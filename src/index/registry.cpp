#include "index/registry.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "persist/deployment.hpp"
#include "shard/mutable_sharded_index.hpp"
#include "shard/sharded_index.hpp"
#include "util/sync.hpp"

namespace topk::index {

namespace {

/// Rebuilds the full host CSR of a warm-loaded sharded base by
/// concatenating its per-shard slices — the matrix the Compactor folds
/// against.  Returns null when any shard's backend holds no host CSR
/// (fpga-sim: the quantised device image cannot reproduce the exact
/// host values, so such a warm load serves but cannot compact).
std::shared_ptr<const sparse::Csr> reconstruct_base_matrix(
    const shard::ShardedIndex& base) {
  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;
  for (std::size_t s = 0; s < base.shard_count(); ++s) {
    const sparse::Csr* slice = base.shard(s).primary().host_csr();
    if (slice == nullptr) {
      return nullptr;
    }
    const std::uint64_t offset = row_ptr.back();
    for (std::uint32_t r = 1; r <= slice->rows(); ++r) {
      row_ptr.push_back(offset + slice->row_ptr()[r]);
    }
    col_idx.insert(col_idx.end(), slice->col_idx().begin(),
                   slice->col_idx().end());
    values.insert(values.end(), slice->values().begin(),
                  slice->values().end());
  }
  return std::make_shared<const sparse::Csr>(
      sparse::Csr::from_parts(base.rows(), base.cols(), std::move(row_ptr),
                              std::move(col_idx), std::move(values)));
}

struct Registry {
  util::Mutex mutex;
  std::map<std::string, IndexFactory, std::less<>> factories
      TOPK_GUARDED_BY(mutex);
};

/// Function-local static seeded with the built-ins: no static-init
/// order hazards, and the four paper backends are always present.
Registry& registry() {
  static Registry instance;
  static const bool seeded = [] {
    Registry& r = instance;
    // The magic-static guard already serialises seeding against every
    // other registry() caller; the lock is for the analysis (and free —
    // uncontended by construction).
    util::MutexLock lock(r.mutex);
    r.factories.emplace(
        "fpga-sim",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions& options) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<FpgaSimIndex>(std::move(matrix),
                                                options.design);
        });
    r.factories.emplace(
        "cpu-heap",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions&) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<CpuHeapIndex>(std::move(matrix));
        });
    r.factories.emplace(
        "exact-sort",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions&) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<ExactSortIndex>(std::move(matrix));
        });
    r.factories.emplace(
        "gpu-f16",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions& options) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<GpuModelIndex>(std::move(matrix),
                                                 options.gpu_model);
        });
    r.factories.emplace(
        "cpu-simd",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions&) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<CpuSimdIndex>(std::move(matrix),
                                                CpuSimdIndex::Mode::kExact);
        });
    r.factories.emplace(
        "cpu-simd-f16",
        [](std::shared_ptr<const sparse::Csr> matrix,
           const IndexOptions&) -> std::shared_ptr<SimilarityIndex> {
          return std::make_shared<CpuSimdIndex>(
              std::move(matrix), CpuSimdIndex::Mode::kHalfScreen);
        });
    // Scatter-gather variants of every built-in: the same backend
    // behind shard::ShardedIndex (options.shards row-range shards,
    // nnz-balanced boundaries unless options.nnz_balanced_shards is
    // false; the inner factories consume the remaining options).  The
    // shard count is clamped to the row count so tiny collections
    // still construct through the generic bench/test sweeps.
    for (const char* inner :
         {"fpga-sim", "cpu-heap", "exact-sort", "gpu-f16", "cpu-simd"}) {
      r.factories.emplace(
          std::string("sharded-") + inner,
          [inner](std::shared_ptr<const sparse::Csr> matrix,
                  const IndexOptions& options)
              -> std::shared_ptr<SimilarityIndex> {
            const std::string label = std::string("sharded-") + inner;
            // Warm restart: replay a persisted deployment instead of
            // encoding.  The recorded label must match the requested
            // backend — a deployment saved under a different inner
            // backend must not silently serve as this one.  Checked
            // against the manifest alone, before any image is hashed
            // or rebuilt, so a mismatch fails fast.
            if (!options.deployment_dir.empty()) {
              const std::string saved_label =
                  persist::read_manifest(options.deployment_dir).label;
              if (saved_label != label) {
                throw std::runtime_error(
                    label + ": deployment at '" + options.deployment_dir +
                    "' was saved as '" + saved_label +
                    "' — refusing to serve it as a different backend");
              }
              return shard::ShardedIndexBuilder::from_deployment(
                  options.deployment_dir, options);
            }
            if (!matrix) {
              throw std::invalid_argument(label + ": null matrix");
            }
            const int shards = static_cast<int>(std::min<std::uint64_t>(
                static_cast<std::uint64_t>(std::max(1, options.shards)),
                std::max<std::uint32_t>(1, matrix->rows())));
            // Replica count clamped like the shard count, so generic
            // sweeps can set it unconditionally.
            return shard::ShardedIndexBuilder()
                .matrix(std::move(matrix))
                .shards(shards)
                .policy(options.nnz_balanced_shards
                            ? shard::ShardPolicy::kNnzBalanced
                            : shard::ShardPolicy::kEvenRows)
                .replicas(std::max(1, options.replicas))
                .inner_backend(inner)
                .inner_options(options)
                .label(label)
                .build();
          });
    }
    // Mutable (LSM-shaped) variants: the same sealed scatter-gather
    // tier wrapped in shard::MutableShardedIndex, absorbing
    // insert_row/delete_row into an in-memory delta that is folded
    // back by persist::Compactor.  options.delta_capacity and
    // options.compact_threshold are the tier's knobs.
    for (const char* inner :
         {"fpga-sim", "cpu-heap", "exact-sort", "gpu-f16", "cpu-simd"}) {
      r.factories.emplace(
          std::string("mutable-sharded-") + inner,
          [inner](std::shared_ptr<const sparse::Csr> matrix,
                  const IndexOptions& options)
              -> std::shared_ptr<SimilarityIndex> {
            const std::string base_label = std::string("sharded-") + inner;
            const std::string label = "mutable-" + base_label;
            shard::MutableConfig config;
            config.delta_capacity = options.delta_capacity;
            config.compact_threshold = options.compact_threshold;
            config.label = label;
            shard::RebuildRecipe recipe;
            recipe.replicas = std::max(1, options.replicas);
            recipe.inner_backend = inner;
            recipe.inner_options = options;
            recipe.inner_options.deployment_dir.clear();
            recipe.inner_options.replicas = 1;
            recipe.label = base_label;
            // Warm restart: adopt a deployment saved under the SEALED
            // base's label — every generation the Compactor writes
            // carries it, so a mutable index resumes from its own
            // images (generation and inherited tombstones come from
            // the v2 manifest; a v1 manifest resumes at generation 0).
            if (!options.deployment_dir.empty()) {
              const persist::DeploymentManifest manifest =
                  persist::read_manifest(options.deployment_dir);
              if (manifest.label != base_label) {
                throw std::runtime_error(
                    label + ": deployment at '" + options.deployment_dir +
                    "' was saved as '" + manifest.label +
                    "' — refusing to serve it as a different backend");
              }
              IndexOptions warm_options = options;
              warm_options.replicas = recipe.replicas;
              auto base = persist::load_deployment(options.deployment_dir,
                                                   warm_options);
              recipe.shards = static_cast<int>(base->shard_count());
              auto host = reconstruct_base_matrix(*base);
              return std::make_shared<shard::MutableShardedIndex>(
                  std::move(base), std::move(host), std::move(recipe),
                  std::move(config), manifest.generation,
                  manifest.tombstones);
            }
            if (!matrix) {
              throw std::invalid_argument(label + ": null matrix");
            }
            const int shards = static_cast<int>(std::min<std::uint64_t>(
                static_cast<std::uint64_t>(std::max(1, options.shards)),
                std::max<std::uint32_t>(1, matrix->rows())));
            recipe.shards = shards;
            recipe.policy = options.nnz_balanced_shards
                                ? shard::ShardPolicy::kNnzBalanced
                                : shard::ShardPolicy::kEvenRows;
            auto base = shard::ShardedIndexBuilder()
                            .matrix(matrix)
                            .shards(shards)
                            .policy(recipe.policy)
                            .replicas(recipe.replicas)
                            .routing(recipe.routing)
                            .inner_backend(inner)
                            .inner_options(recipe.inner_options)
                            .label(base_label)
                            .build();
            return std::make_shared<shard::MutableShardedIndex>(
                std::move(base), std::move(matrix), std::move(recipe),
                std::move(config));
          });
    }
    return true;
  }();
  (void)seeded;
  return instance;
}

std::string known_backends_message(const Registry& r)
    TOPK_REQUIRES(r.mutex) {
  std::string message;
  for (const auto& [name, factory] : r.factories) {
    if (!message.empty()) {
      message += ", ";
    }
    message += name;
  }
  return message;
}

}  // namespace

void register_backend(const std::string& name, IndexFactory factory) {
  if (name.empty()) {
    throw std::invalid_argument("register_backend: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("register_backend: null factory");
  }
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  if (!r.factories.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("register_backend: '" + name +
                                "' already registered");
  }
}

std::vector<std::string> registered_backends() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) {
    names.push_back(name);
  }
  return names;  // std::map iterates sorted
}

bool has_backend(std::string_view name) {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  return r.factories.find(name) != r.factories.end();
}

std::shared_ptr<SimilarityIndex> make_index(
    std::string_view name, std::shared_ptr<const sparse::Csr> matrix,
    const IndexOptions& options) {
  IndexFactory factory;
  {
    Registry& r = registry();
    util::MutexLock lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it == r.factories.end()) {
      throw std::invalid_argument("make_index: unknown backend '" +
                                  std::string(name) + "' (registered: " +
                                  known_backends_message(r) + ")");
    }
    factory = it->second;
  }
  // Construct outside the lock: building an FPGA image encodes the
  // whole matrix and must not serialise unrelated make_index calls.
  return factory(std::move(matrix), options);
}

std::shared_ptr<SimilarityIndex> make_index(std::string_view name,
                                            const sparse::Csr& matrix,
                                            const IndexOptions& options) {
  return make_index(name, std::make_shared<const sparse::Csr>(matrix), options);
}

IndexBuilder& IndexBuilder::backend(std::string name) {
  backend_ = std::move(name);
  return *this;
}

IndexBuilder& IndexBuilder::matrix(std::shared_ptr<const sparse::Csr> matrix) {
  matrix_ = std::move(matrix);
  return *this;
}

IndexBuilder& IndexBuilder::matrix(sparse::Csr matrix) {
  matrix_ = std::make_shared<const sparse::Csr>(std::move(matrix));
  return *this;
}

IndexBuilder& IndexBuilder::design(const core::DesignConfig& design) {
  options_.design = design;
  return *this;
}

IndexBuilder& IndexBuilder::gpu_model(const baselines::GpuPerfModel& model) {
  options_.gpu_model = model;
  return *this;
}

IndexBuilder& IndexBuilder::shards(int count) {
  options_.shards = count;
  return *this;
}

IndexBuilder& IndexBuilder::nnz_balanced_shards(bool balanced) {
  options_.nnz_balanced_shards = balanced;
  return *this;
}

IndexBuilder& IndexBuilder::replicas(int count) {
  options_.replicas = count;
  return *this;
}

IndexBuilder& IndexBuilder::deployment_dir(std::string dir) {
  options_.deployment_dir = std::move(dir);
  return *this;
}

IndexBuilder& IndexBuilder::delta_capacity(std::uint64_t rows) {
  options_.delta_capacity = rows;
  return *this;
}

IndexBuilder& IndexBuilder::compact_threshold(std::uint64_t mutations) {
  options_.compact_threshold = mutations;
  return *this;
}

std::shared_ptr<SimilarityIndex> IndexBuilder::build() const {
  // A warm-loading sharded backend reads its images, not a matrix.
  if (!matrix_ && options_.deployment_dir.empty()) {
    throw std::invalid_argument("IndexBuilder: no matrix set");
  }
  return make_index(backend_, matrix_, options_);
}

}  // namespace topk::index
