// Unified multi-backend similarity-search API.
//
// The paper's central claim is comparative: the FPGA Top-K SpMV design
// against a multi-threaded CPU baseline and a GPU F16 model.  Each of
// those execution strategies used to live behind a different ad-hoc
// entry point (core::TopKAccelerator::query, the free functions in
// baselines::, the GPU model).  SimilarityIndex is the one abstraction
// they all implement — the backend-interchangeable kernel view of the
// parallel all-pairs-similarity literature (PAPERS.md) — so benches,
// examples and the serving tier select a backend at runtime and every
// comparison runs through the identical code path.
//
// Concrete adapters live in index/backends.hpp; runtime construction
// by name ("fpga-sim", "cpu-heap", ...) in index/registry.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/accelerator.hpp"
#include "core/topk_spmv.hpp"

namespace topk::sparse {
class Csr;
}  // namespace topk::sparse

namespace topk::index {

/// Backend-neutral execution options for one query.
struct QueryOptions {
  /// Maximum concurrency for one query (0 = hardware concurrency,
  /// 1 = sequential on the calling thread).  Backends without an
  /// intra-query parallel path ignore it.
  int threads = 1;
};

/// Analytic-model counters attached by GpuModelIndex.
struct GpuModelStats {
  double modelled_spmv_seconds = 0.0;  ///< SpMV kernel alone
  double modelled_topk_seconds = 0.0;  ///< SpMV + full radix sort
};

/// Scatter-gather counters attached by shard::ShardedIndex.  The
/// common QueryStats fields aggregate across shards (rows_scanned
/// sums; modelled_seconds is the max — the critical-path shard of a
/// parallel scatter); these record the gather itself.
struct ShardStats {
  int shards = 0;          ///< scatter width of this query
  /// Replication factor: the largest replica count of any shard (1 for
  /// an unreplicated index).
  int replicas = 1;
  /// Shard with the largest per-shard time — the modelled device time
  /// when the shard reports one (fpga-sim, gpu-f16), the measured wall
  /// time of its query_shard call otherwise (cpu-heap, exact-sort).
  /// Always set after a successful query: the scatter times every
  /// shard, so there is no "-1, no signal" state any more.
  int slowest_shard = -1;
  /// The slowest shard's time in seconds (modelled or measured, per
  /// the slowest_shard rule) — the load signal dynamic resharding
  /// rebalances on.
  double slowest_seconds = 0.0;
  /// Candidate entries the k-way merge consumed before the final cut.
  std::uint64_t gathered_candidates = 0;
  /// (query, shard) cells that failed on their routed replica and were
  /// retried on another during this query — 0 on an all-healthy set.
  std::uint64_t failovers = 0;
};

/// Cumulative health/performance counters of one replica of one shard,
/// snapshot via shard::ShardedIndex::replica_stats().  The routing
/// policies read the live counters behind this view: kLeastLoaded
/// routes to the replica with the fewest in-flight calls (ties broken
/// by the lower EWMA), and failover skips replicas marked unhealthy by
/// their last call.
struct ReplicaStats {
  std::uint64_t queries = 0;   ///< calls served successfully
  std::uint64_t failures = 0;  ///< calls that threw (absorbed by failover)
  int inflight = 0;            ///< calls executing right now
  /// Exponentially weighted moving average of observed per-call wall
  /// time (seconds); 0 until the replica has served a call.
  double ewma_seconds = 0.0;
  /// False while the replica's most recent call failed; a success
  /// flips it back (transient faults recover).
  bool healthy = true;
  /// what() of the most recent failure, truncated by the shard tier to
  /// a fixed cap so a failing replica can't grow memory unbounded.
  std::string last_error;
  /// Steady-clock seconds since process start (telemetry::now_seconds)
  /// of the most recent failure; -1 when the replica has never failed.
  double last_error_seconds = -1.0;
};

/// Kernel counters attached by CpuSimdIndex (the vectorized two-phase
/// screen/rescore backend, see simd/topk_simd.hpp).
struct SimdStats {
  /// ISA level the screening scan ran at ("scalar", "avx2", "avx512").
  std::string isa;
  /// Rows whose screen interval reached the running k-th best and were
  /// rescored with the exact double kernel (0 for the f16 screen-only
  /// mode).
  std::uint64_t rows_rescored = 0;
};

/// Counters attached by shard::MutableShardedIndex: the sealed tier's
/// scatter-gather stats plus what the delta tier contributed to this
/// query.
struct MutableTierStats {
  ShardStats shard;  ///< the sealed base's gather, as in ShardStats
  /// Sealed generation that served the query (0 = cold build, +1 per
  /// compaction swap).
  std::uint64_t generation = 0;
  /// Live delta rows scored by the brute-force delta scan.
  std::uint64_t delta_scanned = 0;
  /// Delta entries that entered the k-way merge as candidates.
  std::uint64_t delta_candidates = 0;
  /// Base ids hidden from the merge (tombstoned, inherited from a past
  /// compaction, or superseded by a delta version).
  std::uint64_t masked_rows = 0;
};

/// Per-query counters.  The common fields are meaningful for every
/// backend; device-specific counters ride along as a typed extension
/// (ExecutionStats for the FPGA simulator, GpuModelStats for the GPU
/// model, ShardStats for the sharded tier, MutableTierStats for the
/// mutable tier) instead of being flattened into one union of field
/// names.
struct QueryStats {
  /// Candidate rows the backend examined (all backends scan the full
  /// collection; an ANN backend would report fewer).
  std::uint64_t rows_scanned = 0;
  /// Modelled on-device time for modelled backends (FPGA, GPU);
  /// zero for backends that only exist as measured host code.
  double modelled_seconds = 0.0;
  std::variant<std::monostate, core::ExecutionStats, GpuModelStats, ShardStats,
               MutableTierStats, SimdStats>
      backend;
};

/// Result of one query through any backend.
struct QueryResult {
  std::vector<core::TopKEntry> entries;  ///< descending by value
  QueryStats stats;
};

/// The FPGA extension payload, if this result came from FpgaSimIndex.
[[nodiscard]] inline const core::ExecutionStats* fpga_stats(
    const QueryResult& result) noexcept {
  return std::get_if<core::ExecutionStats>(&result.stats.backend);
}

/// The GPU-model extension payload, if this result came from
/// GpuModelIndex.
[[nodiscard]] inline const GpuModelStats* gpu_stats(
    const QueryResult& result) noexcept {
  return std::get_if<GpuModelStats>(&result.stats.backend);
}

/// The SIMD-kernel extension payload, if this result came from
/// CpuSimdIndex.
[[nodiscard]] inline const SimdStats* simd_stats(
    const QueryResult& result) noexcept {
  return std::get_if<SimdStats>(&result.stats.backend);
}

/// The mutable-tier extension payload, if this result came from
/// shard::MutableShardedIndex.
[[nodiscard]] inline const MutableTierStats* mutable_stats(
    const QueryResult& result) noexcept {
  return std::get_if<MutableTierStats>(&result.stats.backend);
}

/// The scatter-gather extension payload, if this result came from
/// shard::ShardedIndex — or the sealed tier's gather stats when it
/// came from the mutable tier, so routing/failover dashboards read one
/// accessor for both.
[[nodiscard]] inline const ShardStats* shard_stats(
    const QueryResult& result) noexcept {
  if (const auto* mutable_tier = mutable_stats(result)) {
    return &mutable_tier->shard;
  }
  return std::get_if<ShardStats>(&result.stats.backend);
}

/// Capability and footprint metadata reported by describe().
struct IndexDescription {
  std::string backend;  ///< registry key, e.g. "fpga-sim"
  std::string detail;   ///< human-readable configuration
  /// True when scores are exact (double accumulation) — the backend
  /// can serve as ground truth for the approximate ones.
  bool exact = false;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  /// Largest accepted top_k (0 = bounded only by rows); the FPGA
  /// merge can surface at most k * cores candidates.
  int max_top_k = 0;
  /// Index image footprint (device streams or the CSR arrays).
  std::uint64_t memory_bytes = 0;
};

/// Resolves QueryOptions::threads into an actual fan-out: 0 means
/// hardware concurrency, the result is clamped to `work_items`, and
/// negative counts throw std::invalid_argument.  One definition shared
/// by the default batch path and the sharded scatter so every backend
/// interprets the option identically.
[[nodiscard]] int resolve_fanout_threads(int requested, std::size_t work_items);

/// Abstract Top-K similarity index over a fixed collection.
///
/// Implementations are immutable after construction and
/// thread-compatible: concurrent query() calls on one instance are
/// safe.  All adapters validate through validate_query(), so shape and
/// top_k errors are uniform across backends.
class SimilarityIndex {
 public:
  virtual ~SimilarityIndex() = default;

  /// Returns the (approximate or exact, see describe().exact) top
  /// `top_k` rows by dot product with `x`.  Throws
  /// std::invalid_argument on shape mismatch or top_k outside
  /// (0, max_top_k()].
  [[nodiscard]] virtual QueryResult query(
      std::span<const float> x, int top_k,
      const QueryOptions& options = {}) const = 0;

  /// Runs a batch of queries (each a cols()-sized vector), spreading
  /// whole queries across options.threads workers on the shared
  /// persistent pool with dynamic claiming.  Results align with the
  /// input order.  The default implementation validates up front and
  /// fans out over query(); backends with a cheaper batch path may
  /// override.
  [[nodiscard]] virtual std::vector<QueryResult> query_batch(
      const std::vector<std::vector<float>>& queries, int top_k,
      const QueryOptions& options = {}) const;

  [[nodiscard]] virtual std::uint32_t rows() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t cols() const noexcept = 0;

  /// Capability/stats metadata — one call for everything a serving
  /// tier or bench needs to route, display, and sanity-check.
  [[nodiscard]] virtual IndexDescription describe() const = 0;

  /// Largest accepted top_k (0 = bounded only by rows).
  [[nodiscard]] virtual int max_top_k() const noexcept { return 0; }

  /// The host-resident CSR matrix this index retains, or nullptr for
  /// backends that only hold device/model images.  One virtual instead
  /// of a dynamic_cast chain per concrete type: the persistence tier
  /// saves any index whose primary returns non-null, and the mutable
  /// tier's compaction reads it to rebuild the base matrix.
  [[nodiscard]] virtual const sparse::Csr* host_csr() const noexcept {
    return nullptr;
  }

  /// Shared argument validation: x.size() == cols(), top_k in
  /// (0, max_top_k()] (or just positive when unbounded).  Throws
  /// std::invalid_argument with a backend-tagged message.
  void validate_query(std::span<const float> x, int top_k) const;

  /// Batch variant: every vector checked against cols(), top_k once.
  void validate_batch(const std::vector<std::vector<float>>& queries,
                      int top_k) const;

 protected:
  void check_vector(std::span<const float> x) const;
  void check_top_k(int top_k) const;
};

}  // namespace topk::index
