#include "index/backends.hpp"

#include <stdexcept>
#include <utility>

#include "baselines/cpu_topk_spmv.hpp"
#include "hbmsim/timing_model.hpp"
#include "simd/topk_simd.hpp"
#include "telemetry/metrics.hpp"

namespace topk::index {

namespace {

std::shared_ptr<const sparse::Csr> require_matrix(
    std::shared_ptr<const sparse::Csr> matrix, const char* backend) {
  if (!matrix) {
    throw std::invalid_argument(std::string(backend) + ": null matrix");
  }
  return matrix;
}

// The SIMD kernel (src/simd/) is kernel-layer code and reports its
// work through SimdKernelStats only; this adapter is the serving-tier
// boundary that folds those per-call numbers into the process-wide
// registry (tools/analysis/layers.toml keeps telemetry out of the
// kernel layers).
telemetry::Counter& simd_screened_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_simd_rows_screened_total", {},
      "Rows screened by the cpu-simd f32 scan.");
  return c;
}

telemetry::Counter& simd_rescored_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_simd_rows_rescored_total", {},
      "Rows the exact cpu-simd path rescored via Csr::row_dot after "
      "screening.");
  return c;
}

}  // namespace

// ------------------------------------------------------------- FpgaSimIndex

FpgaSimIndex::FpgaSimIndex(std::shared_ptr<const sparse::Csr> matrix,
                           const core::DesignConfig& design) {
  const auto checked = require_matrix(std::move(matrix), "fpga-sim");
  source_nnz_ = checked->nnz();
  accelerator_ = std::make_shared<const core::TopKAccelerator>(*checked, design);
  modelled_seconds_ =
      hbmsim::estimate_query_time(*accelerator_, source_nnz_).seconds;
}

FpgaSimIndex::FpgaSimIndex(
    std::shared_ptr<const core::TopKAccelerator> accelerator)
    : accelerator_(std::move(accelerator)) {
  if (!accelerator_) {
    throw std::invalid_argument("fpga-sim: null accelerator");
  }
  for (const core::BsCsrMatrix& stream : accelerator_->core_streams()) {
    source_nnz_ += stream.source_nnz();
  }
  modelled_seconds_ =
      hbmsim::estimate_query_time(*accelerator_, source_nnz_).seconds;
}

QueryResult FpgaSimIndex::query(std::span<const float> x, int top_k,
                                const QueryOptions& options) const {
  validate_query(x, top_k);  // backend-tagged errors, uniform with the rest
  core::QueryOptions core_options;
  core_options.threads = options.threads;
  core::QueryResult device = accelerator_->query(x, top_k, core_options);

  QueryResult result;
  result.entries = std::move(device.entries);
  result.stats.rows_scanned = accelerator_->rows();
  result.stats.modelled_seconds = modelled_seconds_;
  result.stats.backend = device.stats;
  return result;
}

std::uint32_t FpgaSimIndex::rows() const noexcept {
  return accelerator_->rows();
}

std::uint32_t FpgaSimIndex::cols() const noexcept {
  return accelerator_->cols();
}

int FpgaSimIndex::max_top_k() const noexcept {
  return accelerator_->config().k * accelerator_->config().cores;
}

IndexDescription FpgaSimIndex::describe() const {
  IndexDescription description;
  description.backend = "fpga-sim";
  description.detail = accelerator_->config().name() + ", B = " +
                       std::to_string(accelerator_->layout().capacity) +
                       " nnz/packet";
  description.exact = false;
  description.rows = rows();
  description.cols = cols();
  description.max_top_k = max_top_k();
  description.memory_bytes = accelerator_->stream_bytes();
  return description;
}

// ------------------------------------------------------------- CpuHeapIndex

CpuHeapIndex::CpuHeapIndex(std::shared_ptr<const sparse::Csr> matrix)
    : matrix_(require_matrix(std::move(matrix), "cpu-heap")) {}

QueryResult CpuHeapIndex::query(std::span<const float> x, int top_k,
                                const QueryOptions& options) const {
  validate_query(x, top_k);
  QueryResult result;
  result.entries =
      baselines::cpu_topk_spmv(*matrix_, x, top_k, options.threads);
  result.stats.rows_scanned = matrix_->rows();
  return result;
}

std::uint32_t CpuHeapIndex::rows() const noexcept { return matrix_->rows(); }

std::uint32_t CpuHeapIndex::cols() const noexcept { return matrix_->cols(); }

IndexDescription CpuHeapIndex::describe() const {
  IndexDescription description;
  description.backend = "cpu-heap";
  description.detail = "multi-threaded CSR min-heap scan (sparse_dot_topn style)";
  description.exact = true;
  description.rows = rows();
  description.cols = cols();
  description.memory_bytes = matrix_->csr_bytes();
  return description;
}

// ----------------------------------------------------------- ExactSortIndex

ExactSortIndex::ExactSortIndex(std::shared_ptr<const sparse::Csr> matrix)
    : matrix_(require_matrix(std::move(matrix), "exact-sort")) {}

QueryResult ExactSortIndex::query(std::span<const float> x, int top_k,
                                  const QueryOptions& /*options*/) const {
  validate_query(x, top_k);
  QueryResult result;
  result.entries = baselines::exact_topk_via_sort(*matrix_, x, top_k);
  result.stats.rows_scanned = matrix_->rows();
  return result;
}

std::uint32_t ExactSortIndex::rows() const noexcept { return matrix_->rows(); }

std::uint32_t ExactSortIndex::cols() const noexcept { return matrix_->cols(); }

IndexDescription ExactSortIndex::describe() const {
  IndexDescription description;
  description.backend = "exact-sort";
  description.detail = "full SpMV then partial sort (section II strawman)";
  description.exact = true;
  description.rows = rows();
  description.cols = cols();
  description.memory_bytes = matrix_->csr_bytes();
  return description;
}

// ------------------------------------------------------------ GpuModelIndex

GpuModelIndex::GpuModelIndex(std::shared_ptr<const sparse::Csr> matrix,
                             const baselines::GpuPerfModel& model)
    : matrix_(require_matrix(std::move(matrix), "gpu-f16")), model_(model) {
  baselines::validate(model_);
}

QueryResult GpuModelIndex::query(std::span<const float> x, int top_k,
                                 const QueryOptions& /*options*/) const {
  validate_query(x, top_k);
  QueryResult result;
  result.entries = baselines::gpu_f16_topk_spmv(*matrix_, x, top_k);
  result.stats.rows_scanned = matrix_->rows();
  GpuModelStats gpu;
  gpu.modelled_spmv_seconds = model_.spmv_seconds(matrix_->nnz(), true);
  gpu.modelled_topk_seconds =
      model_.topk_seconds(matrix_->nnz(), matrix_->rows(), true);
  result.stats.modelled_seconds = gpu.modelled_topk_seconds;
  result.stats.backend = gpu;
  return result;
}

std::uint32_t GpuModelIndex::rows() const noexcept { return matrix_->rows(); }

std::uint32_t GpuModelIndex::cols() const noexcept { return matrix_->cols(); }

IndexDescription GpuModelIndex::describe() const {
  IndexDescription description;
  description.backend = "gpu-f16";
  description.detail = "P100 model: functional binary16 SpMV + analytic timing";
  description.exact = false;
  description.rows = rows();
  description.cols = cols();
  description.memory_bytes =
      matrix_->nnz() * (2 + sizeof(std::uint32_t)) +  // F16 values + columns
      (static_cast<std::uint64_t>(matrix_->rows()) + 1) * sizeof(std::uint64_t);
  return description;
}

// ------------------------------------------------------------- CpuSimdIndex

CpuSimdIndex::CpuSimdIndex(std::shared_ptr<const sparse::Csr> matrix,
                           Mode mode)
    : mode_(mode) {
  const char* backend = mode == Mode::kExact ? "cpu-simd" : "cpu-simd-f16";
  simd::LayoutOptions layout_options;
  layout_options.precision = mode == Mode::kExact
                                 ? simd::ScreenPrecision::kFloat32
                                 : simd::ScreenPrecision::kHalf;
  layout_ = simd::BlockedCsr::build(require_matrix(std::move(matrix), backend),
                                    layout_options);
}

QueryResult CpuSimdIndex::query(std::span<const float> x, int top_k,
                                const QueryOptions& options) const {
  validate_query(x, top_k);
  simd::SimdQueryOptions simd_options;
  simd_options.threads = options.threads;
  simd::SimdKernelStats kernel;
  QueryResult result;
  result.entries =
      mode_ == Mode::kExact
          ? simd::topk_spmv_exact(layout_, x, top_k, simd_options, &kernel)
          : simd::topk_spmv_screen(layout_, x, top_k, simd_options, &kernel);
  simd_screened_metric().add(kernel.rows_screened);
  simd_rescored_metric().add(kernel.rows_rescored);
  result.stats.rows_scanned = layout_.rows();
  SimdStats stats;
  stats.isa = simd::to_string(kernel.level);
  stats.rows_rescored = kernel.rows_rescored;
  result.stats.backend = std::move(stats);
  return result;
}

std::uint32_t CpuSimdIndex::rows() const noexcept { return layout_.rows(); }

std::uint32_t CpuSimdIndex::cols() const noexcept { return layout_.cols(); }

IndexDescription CpuSimdIndex::describe() const {
  IndexDescription description;
  description.backend = mode_ == Mode::kExact ? "cpu-simd" : "cpu-simd-f16";
  const char* strategy =
      layout_.strategy() == simd::Strategy::kBlocked ? "blocked" : "gather";
  description.detail =
      std::string(mode_ == Mode::kExact
                      ? "vectorized f32 screen + exact rescore, "
                      : "vectorized binary16 screen (no rescore), ") +
      strategy + " layout, " + simd::to_string(simd::dispatch_level()) +
      " dispatch";
  description.exact = mode_ == Mode::kExact;
  description.rows = rows();
  description.cols = cols();
  description.memory_bytes =
      layout_.source().csr_bytes() + layout_.extra_bytes();
  return description;
}

}  // namespace topk::index
