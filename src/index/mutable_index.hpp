// Mutable extension of the SimilarityIndex surface.
//
// Every index in the stack is sealed at build time — the paper's
// streaming Top-K SpMV design assumes a static matrix, and adding one
// row means re-encoding the whole collection.  Mutability therefore
// comes from the architecture around the sealed kernels (the LSM
// idiom): a MutableIndex absorbs insert_row/delete_row into an
// in-memory delta tier (index::DeltaIndex), serves queries by merging
// the sealed base with a brute-force scan of the delta, and is
// periodically compacted (persist::Compactor) — the delta is folded
// into a fresh sealed generation and atomically swapped in behind the
// serving path.
//
// Row-id contract: ids are append-only and stable for the index's
// lifetime.  rows() is the id high-water mark; a deleted id is never
// reused implicitly (live_rows() < rows() once anything was deleted),
// but insert_row(row, ...) at a deleted id revives it.  Results never
// contain a deleted id, before or after compaction — so results are
// bit-identical to an exact index built from the logically-equivalent
// matrix (the live rows in ascending id order) under the monotone
// live-id remap.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "index/similarity_index.hpp"

namespace topk::index {

/// Snapshot of a mutable index's delta tier, via delta_stats().
struct DeltaStats {
  /// Sealed-generation counter: 0 for the cold build, +1 per
  /// compaction swap (the compactor's swap key, persisted in v2
  /// deployment manifests).
  std::uint64_t generation = 0;
  /// Live row versions held in the delta (inserted or superseding
  /// rows; what a compaction folds into the next base).
  std::uint64_t delta_rows = 0;
  /// Ids currently deleted: their base rows are masked at gather.
  /// Tombstones persist across compactions (a folded deleted row is an
  /// empty base row that must still never serve) until the id is
  /// revived.
  std::uint64_t tombstones = 0;
  /// Base ids masked because a newer version lives in the delta.
  std::uint64_t superseded = 0;
  /// Mutations absorbed since the last compaction swap (0 right after
  /// a swap; an empty-delta compaction is a no-op).
  std::uint64_t mutations_since_seal = 0;
  /// Builder knobs, echoed for observability: inserts throw once the
  /// delta holds delta_capacity live rows, and the compactor's
  /// maybe_compact() fires at compact_threshold.
  std::uint64_t delta_capacity = 0;
  std::uint64_t compact_threshold = 0;
};

/// Abstract mutable Top-K similarity index: the SimilarityIndex query
/// surface plus row mutations.  Thread-safe for any mix of concurrent
/// queries and mutations; each query reflects a consistent logical
/// state (mutations linearise at the query's delta scan).
class MutableIndex : public SimilarityIndex {
 public:
  /// Appends a new row (sorted-or-not (column, value) pairs; columns
  /// must be unique and < cols()) and returns its id — the previous
  /// rows().  Throws std::invalid_argument on a malformed row and
  /// std::runtime_error once the delta is at delta_capacity.
  virtual std::uint32_t insert_row(std::span<const std::uint32_t> columns,
                                   std::span<const float> values) = 0;

  /// Upserts at an existing id: the new version supersedes the base
  /// row (or an earlier delta version) and revives the id if it was
  /// deleted.  `row` == rows() appends.  Throws std::invalid_argument
  /// for row > rows() (ids are append-only — no holes).
  virtual void insert_row(std::uint32_t row,
                          std::span<const std::uint32_t> columns,
                          std::span<const float> values) = 0;

  /// Tombstones a live row: it stops appearing in any result, before
  /// and after compaction.  Returns false when the row is already
  /// deleted (idempotent); throws std::invalid_argument for
  /// row >= rows() (an id that never existed).
  virtual bool delete_row(std::uint32_t row) = 0;

  /// Rows a query can currently return: rows() minus the tombstoned
  /// ids.
  [[nodiscard]] virtual std::uint64_t live_rows() const = 0;

  /// Snapshot of the delta tier's counters.
  [[nodiscard]] virtual DeltaStats delta_stats() const = 0;
};

/// The mutation surface of a registry-built index, or null when the
/// backend is sealed — how `sharded_service` and the benches reach
/// insert_row/delete_row behind the string-keyed factory.
[[nodiscard]] inline std::shared_ptr<MutableIndex> as_mutable(
    const std::shared_ptr<SimilarityIndex>& index) noexcept {
  return std::dynamic_pointer_cast<MutableIndex>(index);
}

}  // namespace topk::index
