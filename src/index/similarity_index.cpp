#include "index/similarity_index.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/cpu_features.hpp"
#include "util/thread_pool.hpp"

namespace topk::index {

int resolve_fanout_threads(int requested, std::size_t work_items) {
  if (requested < 0) {
    throw std::invalid_argument("QueryOptions: negative thread count");
  }
  int threads = requested;
  if (threads == 0) {
    threads = util::default_thread_count();
  }
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads),
                            std::max<std::size_t>(1, work_items)));
}

void SimilarityIndex::check_vector(std::span<const float> x) const {
  if (x.size() != cols()) {
    throw std::invalid_argument(describe().backend +
                                ": query vector size mismatch");
  }
}

void SimilarityIndex::check_top_k(int top_k) const {
  if (top_k <= 0) {
    throw std::invalid_argument(describe().backend +
                                ": top_k must be positive");
  }
  const int limit = max_top_k();
  if (limit > 0 && top_k > limit) {
    throw std::invalid_argument(describe().backend +
                                ": top_k exceeds backend capability");
  }
}

void SimilarityIndex::validate_query(std::span<const float> x,
                                     int top_k) const {
  check_vector(x);
  check_top_k(top_k);
}

void SimilarityIndex::validate_batch(
    const std::vector<std::vector<float>>& queries, int top_k) const {
  for (const auto& x : queries) {
    check_vector(x);
  }
  check_top_k(top_k);
}

std::vector<QueryResult> SimilarityIndex::query_batch(
    const std::vector<std::vector<float>>& queries, int top_k,
    const QueryOptions& options) const {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) {
    validate_batch(queries, top_k);
    return results;
  }
  const int threads = resolve_fanout_threads(options.threads, queries.size());
  validate_batch(queries, top_k);  // so worker threads never throw

  // Whole queries are claimed dynamically from the shared persistent
  // pool; each runs its intra-query path sequentially (throughput over
  // latency, the real-time service host loop).
  util::ThreadPool& pool = util::shared_pool();
  pool.ensure_workers(threads - 1);
  QueryOptions per_query;
  per_query.threads = 1;
  pool.parallel_for(queries.size(), threads, [&](std::size_t i) {
    results[i] = query(queries[i], top_k, per_query);
  });
  return results;
}

}  // namespace topk::index
