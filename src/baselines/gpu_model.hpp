// GPU baseline: Tesla P100 performance model + functional F16 SpMV.
//
// The paper has no GPU Top-K SpMV to compare against, so it combines
// cuSPARSE SpMV with a Thrust radix sort (section V) and additionally
// reports an idealised "SpMV only" variant with zero-cost sorting.
// No GPU exists in this environment, so two substitutions are made
// (DESIGN.md):
//
//  * performance: an analytic bandwidth model.  SpMV streams
//    bytes_per_nnz per non-zero at a calibrated fraction of the P100's
//    549 GB/s (cuSPARSE sustains well under peak on short-row
//    matrices [11]); the Top-K variant adds a radix sort of all N
//    (score, index) pairs at a calibrated pair rate;
//  * accuracy: a bit-faithful software emulation of half-precision
//    SpMV (storage AND accumulation in binary16) that feeds Figure 7's
//    "GPU F16" curves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/topk_spmv.hpp"
#include "sparse/csr.hpp"

namespace topk::baselines {

/// Analytic P100 execution-time model.
struct GpuPerfModel {
  double peak_bandwidth_gbps = 549.0;  ///< Tesla P100 HBM2
  /// Sustained fraction of peak for cuSPARSE CSR SpMV; calibrated to
  /// the paper's Figure 5 (GPU F32 "SpMV only" ~55x over a 279 ms CPU
  /// baseline at N = 0.5e7 -> ~237 GB/s effective).
  double spmv_efficiency_f32 = 0.43;
  /// F16 moves fewer bytes but sustains a lower fraction (calibrated
  /// to the F16/F32 speedup ratio of Figure 5).
  double spmv_efficiency_f16 = 0.36;
  /// Thrust radix sort_by_key throughput for (float, int) pairs,
  /// calibrated to the paper's "as large as 7x" end-to-end gap.
  double sort_pairs_per_second = 425e6;
  /// Kernel-launch and transfer overhead per query.
  double fixed_overhead_s = 50e-6;

  /// Bytes streamed per non-zero: value + column index (row pointers
  /// amortise to ~0 for 20-40 nnz rows; x is cached on chip).
  [[nodiscard]] double bytes_per_nnz(bool half) const noexcept {
    return half ? 6.0 : 8.0;
  }

  /// Time for the SpMV kernel alone ("SpMV only" bars of Figure 5).
  [[nodiscard]] double spmv_seconds(std::uint64_t nnz, bool half) const;

  /// Time for SpMV + full radix sort of the N outputs ("Top-K SpMV").
  [[nodiscard]] double topk_seconds(std::uint64_t nnz, std::uint64_t rows,
                                    bool half) const;
};

/// Validates model constants; throws std::invalid_argument on
/// non-positive rates/efficiencies above 1.
void validate(const GpuPerfModel& model);

/// Functional GPU F16 Top-K: quantises matrix values and x to
/// binary16, computes every row dot product with half-precision
/// multiply AND accumulate, then (exactly) extracts the top_k — the
/// numerics of a cuSPARSE F16 SpMV followed by a perfect sort.
[[nodiscard]] std::vector<core::TopKEntry> gpu_f16_topk_spmv(
    const sparse::Csr& matrix, std::span<const float> x, int top_k);

}  // namespace topk::baselines
