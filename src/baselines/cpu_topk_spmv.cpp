#include "baselines/cpu_topk_spmv.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/cpu_features.hpp"
#include "util/thread_pool.hpp"

namespace topk::baselines {

namespace {

/// Min-heap on the canonical Top-K order: the heap front is the entry
/// that sorts last (lowest score, highest row index on ties), so the
/// lower row index always survives eviction.
struct HeapLess {
  bool operator()(const core::TopKEntry& a, const core::TopKEntry& b) const {
    return core::topk_entry_before(a, b);
  }
};

void scan_rows(const sparse::Csr& matrix, std::span<const float> x,
               std::uint32_t row_begin, std::uint32_t row_end, int top_k,
               std::vector<core::TopKEntry>& heap) {
  heap.reserve(static_cast<std::size_t>(top_k));
  const HeapLess less;
  for (std::uint32_t r = row_begin; r < row_end; ++r) {
    const double score = matrix.row_dot(r, x);
    if (heap.size() < static_cast<std::size_t>(top_k)) {
      heap.push_back(core::TopKEntry{r, score});
      std::push_heap(heap.begin(), heap.end(), less);
    } else if (core::topk_entry_before(core::TopKEntry{r, score},
                                       heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), less);
      heap.back() = core::TopKEntry{r, score};
      std::push_heap(heap.begin(), heap.end(), less);
    }
  }
}

void sort_descending(std::vector<core::TopKEntry>& entries) {
  std::sort(entries.begin(), entries.end(), core::TopKEntryOrder{});
}

}  // namespace

std::vector<core::TopKEntry> cpu_topk_spmv(const sparse::Csr& matrix,
                                           std::span<const float> x, int top_k,
                                           int threads) {
  if (x.size() != matrix.cols()) {
    throw std::invalid_argument("cpu_topk_spmv: vector size mismatch");
  }
  if (top_k <= 0) {
    throw std::invalid_argument("cpu_topk_spmv: top_k must be positive");
  }
  if (threads < 0) {
    throw std::invalid_argument("cpu_topk_spmv: negative thread count");
  }
  if (threads == 0) {
    threads = util::default_thread_count();
  }
  // Clamp to the row count in uint32 space: converting rows() to int
  // first overflowed to a negative thread count for rows >= 2^31
  // (regression: CpuTopK.ThreadClampStaysPositive).  `threads` is
  // positive here, so the round-trip through uint32 is lossless.
  threads = static_cast<int>(std::min<std::uint32_t>(
      static_cast<std::uint32_t>(threads),
      std::max<std::uint32_t>(1, matrix.rows())));

  std::vector<std::vector<core::TopKEntry>> heaps(
      static_cast<std::size_t>(threads));
  if (threads == 1) {
    scan_rows(matrix, x, 0, matrix.rows(), top_k, heaps[0]);
  } else {
    // Static row ranges (each range writes only its own heap slot, so
    // results are deterministic), executed on the shared persistent
    // pool — no per-call thread spawning, matching the serving tier's
    // worker model.
    const std::uint32_t rows = matrix.rows();
    util::ThreadPool& pool = util::shared_pool();
    pool.ensure_workers(threads - 1);
    pool.parallel_for(
        static_cast<std::size_t>(threads), threads, [&](std::size_t t) {
          const std::uint32_t begin = static_cast<std::uint32_t>(
              static_cast<std::uint64_t>(rows) * t / threads);
          const std::uint32_t end = static_cast<std::uint32_t>(
              static_cast<std::uint64_t>(rows) * (t + 1) / threads);
          scan_rows(matrix, x, begin, end, top_k, heaps[t]);
        });
  }

  std::vector<core::TopKEntry> merged;
  for (const auto& heap : heaps) {
    merged.insert(merged.end(), heap.begin(), heap.end());
  }
  sort_descending(merged);
  if (merged.size() > static_cast<std::size_t>(top_k)) {
    merged.resize(static_cast<std::size_t>(top_k));
  }
  return merged;
}

std::vector<core::TopKEntry> exact_topk_via_sort(const sparse::Csr& matrix,
                                                 std::span<const float> x,
                                                 int top_k) {
  if (x.size() != matrix.cols()) {
    throw std::invalid_argument("exact_topk_via_sort: vector size mismatch");
  }
  if (top_k <= 0) {
    throw std::invalid_argument("exact_topk_via_sort: top_k must be positive");
  }
  std::vector<core::TopKEntry> all(matrix.rows());
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    all[r] = core::TopKEntry{r, matrix.row_dot(r, x)};
  }
  const auto cutoff =
      std::min<std::size_t>(static_cast<std::size_t>(top_k), all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(cutoff),
                    all.end(), core::TopKEntryOrder{});
  all.resize(cutoff);
  return all;
}

}  // namespace topk::baselines
