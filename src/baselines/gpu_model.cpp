#include "baselines/gpu_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "fixed/half.hpp"

namespace topk::baselines {

double GpuPerfModel::spmv_seconds(std::uint64_t nnz, bool half) const {
  const double efficiency = half ? spmv_efficiency_f16 : spmv_efficiency_f32;
  const double bytes = static_cast<double>(nnz) * bytes_per_nnz(half);
  return bytes / (peak_bandwidth_gbps * 1e9 * efficiency) + fixed_overhead_s;
}

double GpuPerfModel::topk_seconds(std::uint64_t nnz, std::uint64_t rows,
                                  bool half) const {
  return spmv_seconds(nnz, half) +
         static_cast<double>(rows) / sort_pairs_per_second;
}

void validate(const GpuPerfModel& model) {
  if (model.peak_bandwidth_gbps <= 0.0) {
    throw std::invalid_argument("GpuPerfModel: bandwidth must be positive");
  }
  if (model.spmv_efficiency_f32 <= 0.0 || model.spmv_efficiency_f32 > 1.0 ||
      model.spmv_efficiency_f16 <= 0.0 || model.spmv_efficiency_f16 > 1.0) {
    throw std::invalid_argument("GpuPerfModel: efficiencies must be in (0, 1]");
  }
  if (model.sort_pairs_per_second <= 0.0) {
    throw std::invalid_argument("GpuPerfModel: sort rate must be positive");
  }
  if (model.fixed_overhead_s < 0.0) {
    throw std::invalid_argument("GpuPerfModel: negative overhead");
  }
}

std::vector<core::TopKEntry> gpu_f16_topk_spmv(const sparse::Csr& matrix,
                                               std::span<const float> x,
                                               int top_k) {
  if (x.size() != matrix.cols()) {
    throw std::invalid_argument("gpu_f16_topk_spmv: vector size mismatch");
  }
  if (top_k <= 0) {
    throw std::invalid_argument("gpu_f16_topk_spmv: top_k must be positive");
  }

  // Half-precision image of x (device-side storage).
  std::vector<fixed::Half> x_half(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x_half[i] = fixed::Half::from_float(x[i]);
  }

  std::vector<core::TopKEntry> all(matrix.rows());
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    const auto cols = matrix.row_cols(r);
    const auto vals = matrix.row_values(r);
    fixed::Half acc = fixed::Half::from_float(0.0f);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const fixed::Half product =
          fixed::Half::from_float(vals[i]) * x_half[cols[i]];
      acc = acc + product;  // fp16 accumulation: rounds every step
    }
    all[r] = core::TopKEntry{r, static_cast<double>(acc.to_float())};
  }

  const auto cutoff =
      std::min<std::size_t>(static_cast<std::size_t>(top_k), all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(cutoff),
                    all.end(), core::TopKEntryOrder{});
  all.resize(cutoff);
  return all;
}

}  // namespace topk::baselines
