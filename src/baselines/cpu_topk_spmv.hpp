// Multi-threaded CPU Top-K SpMV baseline.
//
// A from-scratch equivalent of sparse_dot_topn [1], the paper's CPU
// baseline: a multi-threaded C++ Top-K SpMV over CSR.  Rows are split
// into per-thread ranges executed on the shared persistent pool
// (util::shared_pool(), no per-call thread spawning); each range
// scans its rows, keeps a local size-K min-heap of (score, row), and
// the per-range heaps are merged at the end.  Scores use double
// accumulation, so with threads == 1 or many this routine is *exact*
// — it doubles as the accuracy ground truth for the approximate
// designs (section V-D).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/topk_spmv.hpp"
#include "sparse/csr.hpp"

namespace topk::baselines {

/// Exact Top-K rows of `matrix` by dot product with `x`, using
/// `threads` worker threads (0 = hardware concurrency).  The result is
/// sorted by descending score (ties by ascending row).  Throws
/// std::invalid_argument on shape mismatch or non-positive top_k.
[[nodiscard]] std::vector<core::TopKEntry> cpu_topk_spmv(
    const sparse::Csr& matrix, std::span<const float> x, int top_k,
    int threads = 0);

/// Reference implementation: computes the full y = A*x, then sorts.
/// O(N log N) and memory-hungry — the "off-the-shelf SpMV plus sort"
/// strategy the paper's section II argues against; used to
/// cross-validate cpu_topk_spmv and as the GPU baseline's skeleton.
[[nodiscard]] std::vector<core::TopKEntry> exact_topk_via_sort(
    const sparse::Csr& matrix, std::span<const float> x, int top_k);

}  // namespace topk::baselines
