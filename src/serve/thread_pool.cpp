#include "serve/thread_pool.hpp"

#include <atomic>
#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>

namespace topk::serve {

namespace {

/// Shared state of one parallel_for call.  Helpers posted to the task
/// queue hold a shared_ptr, so the job outlives the caller's stack
/// frame even if a helper wakes up after the loop already finished.
struct ParallelJob {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr first_exception;

  /// Claims items until the counter runs out.  Exceptions do not cancel
  /// remaining items (every index runs exactly once regardless); only
  /// the first one is kept for the caller to rethrow.
  void run() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_exception) {
          first_exception = std::current_exception();
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mutex);
        done.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) {
    throw std::invalid_argument("ThreadPool: negative worker count");
  }
  ensure_workers(workers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::ensure_workers(int workers) {
  const int target = std::min(workers, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(threads_.size()) < target) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_ && !threads_.empty()) {
      tasks_.push_back(std::move(task));
      work_available_.notify_one();
      return;
    }
  }
  task();  // no workers (or shutting down): run inline
}

void ThreadPool::parallel_for(std::size_t n, int concurrency,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const int helper_budget =
      static_cast<int>(std::min<std::size_t>(
          n - 1, concurrency > 1 ? static_cast<std::size_t>(concurrency - 1) : 0));
  if (helper_budget == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  auto job = std::make_shared<ParallelJob>();
  job->n = n;
  job->fn = &fn;

  int helpers = helper_budget;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    helpers = std::min(helpers, static_cast<int>(threads_.size()));
    if (!stopping_) {
      for (int h = 0; h < helpers; ++h) {
        tasks_.push_back([job] { job->run(); });
      }
      if (helpers == 1) {
        work_available_.notify_one();
      } else if (helpers > 1) {
        work_available_.notify_all();
      }
    }
  }

  job->run();  // caller participates: progress is guaranteed

  std::unique_lock<std::mutex> lock(job->mutex);
  job->done.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) == job->n;
  });
  if (job->first_exception) {
    std::rethrow_exception(job->first_exception);
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace topk::serve
