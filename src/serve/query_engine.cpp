#include "serve/query_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "serve/thread_pool.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace topk::serve {

namespace {

int resolve_workers(int requested) {
  if (requested < 0) {
    throw std::invalid_argument("EngineConfig: negative worker count");
  }
  if (requested == 0) {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    return hw > 0 ? hw : 1;
  }
  return requested;
}

}  // namespace

QueryEngine::QueryEngine(std::shared_ptr<const index::SimilarityIndex> index,
                         EngineConfig config)
    : index_(std::move(index)),
      workers_(resolve_workers(config.workers)),
      max_pending_(config.max_pending),
      latency_window_size_(config.latency_window) {
  if (!index_) {
    throw std::invalid_argument("QueryEngine: null index");
  }
  if (max_pending_ == 0) {
    throw std::invalid_argument("EngineConfig: max_pending must be positive");
  }
  if (latency_window_size_ == 0) {
    throw std::invalid_argument("EngineConfig: latency_window must be positive");
  }
  // Grow the shared pool up front so the first request is not the one
  // paying thread-creation cost.  At least one worker is kept even for
  // workers = 1, so submit() is genuinely asynchronous (a zero-worker
  // pool would run posted tasks inline on the submitting thread).
  shared_pool().ensure_workers(std::max(workers_ - 1, 1));
}

QueryEngine::QueryEngine(std::shared_ptr<index::MutableIndex> index,
                         EngineConfig config)
    : QueryEngine(std::static_pointer_cast<const index::SimilarityIndex>(index),
                  config) {
  mutable_ = std::move(index);
}

QueryEngine::~QueryEngine() { drain(); }

index::QueryResult QueryEngine::query(std::span<const float> x,
                                      int top_k) const {
  util::WallTimer timer;
  index::QueryOptions options;
  options.threads = workers_;
  index::QueryResult result = index_->query(x, top_k, options);
  record_latency(timer.millis());
  return result;
}

std::vector<index::QueryResult> QueryEngine::query_batch(
    const std::vector<std::vector<float>>& queries, int top_k) const {
  // The engine owns the batch fan-out (rather than delegating to
  // SimilarityIndex::query_batch) so every query passes through the
  // same latency capture as the sync and async paths.
  std::vector<index::QueryResult> results(queries.size());
  index_->validate_batch(queries, top_k);
  if (queries.empty()) {
    return results;
  }
  ThreadPool& pool = shared_pool();
  pool.ensure_workers(workers_ - 1);
  pool.parallel_for(queries.size(), workers_, [&](std::size_t i) {
    util::WallTimer timer;
    results[i] = index_->query(queries[i], top_k);
    record_latency(timer.millis());
  });
  return results;
}

std::future<index::QueryResult> QueryEngine::submit(std::vector<float> x,
                                                    int top_k) {
  {
    // Bounded admission: block while max_pending requests are in
    // flight.  This is the serving tier's backpressure valve — callers
    // slow down instead of the queue growing without bound.
    util::MutexLock lock(pending_mutex_);
    while (pending_ >= max_pending_) {
      pending_cv_.wait(pending_mutex_);
    }
    ++pending_;
  }

  auto promise = std::make_shared<std::promise<index::QueryResult>>();
  std::future<index::QueryResult> future = promise->get_future();
  shared_pool().post(
      [this, promise, x = std::move(x), top_k]() mutable {
        try {
          util::WallTimer timer;
          // Same intra-query fan-out as query(): at low load the
          // helpers start immediately (latency), at high load they
          // queue behind other submitted requests and the claiming
          // thread runs the backend itself (throughput).
          index::QueryOptions options;
          options.threads = workers_;
          index::QueryResult result = index_->query(x, top_k, options);
          record_latency(timer.millis());
          promise->set_value(std::move(result));
        } catch (...) {
          promise->set_exception(std::current_exception());
        }
        {
          // Notify under the lock: once a drain()ing destructor sees
          // pending_ == 0 it may free the engine, so no member may be
          // touched after this block releases the mutex.
          util::MutexLock lock(pending_mutex_);
          --pending_;
          pending_cv_.notify_all();
        }
      });
  return future;
}

std::size_t QueryEngine::pending() const {
  util::MutexLock lock(pending_mutex_);
  return pending_;
}

void QueryEngine::drain() {
  util::MutexLock lock(pending_mutex_);
  while (pending_ != 0) {
    pending_cv_.wait(pending_mutex_);
  }
}

void QueryEngine::record_latency(double millis) const {
  util::MutexLock lock(latency_mutex_);
  lifetime_latency_.add(millis);
  if (latency_window_.size() < latency_window_size_) {
    latency_window_.push_back(millis);
  } else {
    latency_window_[latency_window_next_] = millis;
    latency_window_next_ = (latency_window_next_ + 1) % latency_window_size_;
  }
}

void QueryEngine::reset_latency() {
  util::MutexLock lock(latency_mutex_);
  lifetime_latency_ = util::RunningStats();
  latency_window_.clear();
  latency_window_next_ = 0;
}

LatencySummary QueryEngine::latency_summary() const {
  LatencySummary summary;
  std::vector<double> window;
  {
    util::MutexLock lock(latency_mutex_);
    summary.count = lifetime_latency_.count();
    summary.mean_ms = lifetime_latency_.mean();
    summary.max_ms = lifetime_latency_.max();
    window = latency_window_;
  }
  if (window.empty()) {
    return summary;
  }
  summary.p50_ms = util::quantile(window, 0.5);
  summary.p95_ms = util::quantile(window, 0.95);
  summary.p99_ms = util::quantile(window, 0.99);
  return summary;
}

}  // namespace topk::serve
