#include "serve/query_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/cpu_features.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace topk::serve {

namespace {

int resolve_workers(int requested) {
  if (requested < 0) {
    throw std::invalid_argument("EngineConfig: negative worker count");
  }
  if (requested == 0) {
    return util::default_thread_count();
  }
  return requested;
}

// Registry handles resolve once per process (function-local statics);
// the hot path below is one relaxed atomic op per event.
telemetry::Counter& queries_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_engine_queries_total", {},
      "Queries served through the engine (sync, batch, and async).");
  return c;
}

telemetry::Histogram& latency_metric() {
  static telemetry::Histogram& h = telemetry::registry().histogram(
      "topk_engine_query_seconds", telemetry::Histogram::latency_buckets(), {},
      "Engine-observed per-query wall time in seconds.");
  return h;
}

telemetry::Gauge& queue_depth_metric() {
  static telemetry::Gauge& g = telemetry::registry().gauge(
      "topk_engine_queue_depth", {},
      "Async requests admitted but not yet finished.");
  return g;
}

telemetry::Gauge& queue_peak_metric() {
  static telemetry::Gauge& g = telemetry::registry().gauge(
      "topk_engine_queue_depth_peak", {},
      "High-water mark of the async request queue.");
  return g;
}

telemetry::Counter& backpressure_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_engine_backpressure_waits_total", {},
      "submit() calls that blocked on a full queue before admission.");
  return c;
}

telemetry::Counter& rejections_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_engine_rejections_total", {},
      "try_submit() calls turned away on a full queue.");
  return c;
}

// ---- pool observation ----------------------------------------------------
// util::ThreadPool is foundation-layer code and must not import the
// telemetry vocabulary (tools/analysis/layers.toml); the serving layer
// closes the loop by installing these hooks when the first engine is
// built.  The hook functions themselves resolve their registry cells
// through function-local statics, same as every metric above.

void pool_workers_hook(double count) {
  static telemetry::Gauge& g = telemetry::registry().gauge(
      "topk_pool_workers", {}, "Threads owned by the shared pool.");
  g.set(count);
}

void pool_busy_hook(double delta) {
  static telemetry::Gauge& g = telemetry::registry().gauge(
      "topk_pool_busy_workers", {},
      "Pool threads currently executing a task (utilization numerator).");
  g.add(delta);
}

void pool_task_hook() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_pool_tasks_total", {}, "Tasks executed by pool threads.");
  c.inc();
}

constexpr util::PoolInstrumentation kPoolInstrumentation{
    &pool_workers_hook, &pool_busy_hook, &pool_task_hook};

/// Idempotent, thread-safe (function-local static): the first engine
/// constructed in the process wires the pool into the registry.
void ensure_pool_instrumented() {
  static const bool installed = [] {
    util::ThreadPool::set_instrumentation(&kPoolInstrumentation);
    // Publish the current size too: the pool may have grown before the
    // hooks existed (e.g. a bare kernel-layer parallel_for).
    pool_workers_hook(static_cast<double>(util::shared_pool().workers()));
    return true;
  }();
  (void)installed;
}

}  // namespace

QueryEngine::QueryEngine(std::shared_ptr<const index::SimilarityIndex> index,
                         EngineConfig config)
    : index_(std::move(index)),
      workers_(resolve_workers(config.workers)),
      max_pending_(config.max_pending),
      latency_window_size_(config.latency_window),
      latency_window_(config.latency_window == 0 ? 1 : config.latency_window) {
  if (!index_) {
    throw std::invalid_argument("QueryEngine: null index");
  }
  if (max_pending_ == 0) {
    throw std::invalid_argument("EngineConfig: max_pending must be positive");
  }
  if (latency_window_size_ == 0) {
    throw std::invalid_argument("EngineConfig: latency_window must be positive");
  }
  // Grow the shared pool up front so the first request is not the one
  // paying thread-creation cost.  At least one worker is kept even for
  // workers = 1, so submit() is genuinely asynchronous (a zero-worker
  // pool would run posted tasks inline on the submitting thread).
  ensure_pool_instrumented();
  util::shared_pool().ensure_workers(std::max(workers_ - 1, 1));
}

QueryEngine::QueryEngine(std::shared_ptr<index::MutableIndex> index,
                         EngineConfig config)
    : QueryEngine(std::static_pointer_cast<const index::SimilarityIndex>(index),
                  config) {
  mutable_ = std::move(index);
}

QueryEngine::~QueryEngine() { drain(); }

index::QueryResult QueryEngine::query(std::span<const float> x,
                                      int top_k) const {
  // Sync queries are their own trace root: mint an id so the scatter /
  // cell / gather spans the backend records below all correlate.
  const bool traced = telemetry::tracer().enabled();
  telemetry::TraceContextScope scope(
      traced ? telemetry::tracer().mint_trace_id()
             : telemetry::current_trace_id());
  telemetry::SpanTimer span("query", "engine");
  util::WallTimer timer;
  index::QueryOptions options;
  options.threads = workers_;
  index::QueryResult result = index_->query(x, top_k, options);
  record_latency(timer.millis());
  return result;
}

std::vector<index::QueryResult> QueryEngine::query_batch(
    const std::vector<std::vector<float>>& queries, int top_k) const {
  // The engine owns the batch fan-out (rather than delegating to
  // SimilarityIndex::query_batch) so every query passes through the
  // same latency capture as the sync and async paths.
  std::vector<index::QueryResult> results(queries.size());
  index_->validate_batch(queries, top_k);
  if (queries.empty()) {
    return results;
  }
  util::ThreadPool& pool = util::shared_pool();
  pool.ensure_workers(workers_ - 1);
  const bool traced = telemetry::tracer().enabled();
  pool.parallel_for(queries.size(), workers_, [&, traced](std::size_t i) {
    // Each batched query is its own trace root, same as a sync query.
    telemetry::TraceContextScope scope(
        traced ? telemetry::tracer().mint_trace_id() : 0);
    telemetry::SpanTimer span("query", "engine");
    if (span.active()) {
      span.add_arg(telemetry::arg("batch_index",
                                  static_cast<std::uint64_t>(i)));
    }
    util::WallTimer timer;
    results[i] = index_->query(queries[i], top_k);
    record_latency(timer.millis());
  });
  return results;
}

std::future<index::QueryResult> QueryEngine::launch_async(
    std::vector<float> x, int top_k, std::uint64_t trace_id,
    double enqueued_seconds) {
  auto promise = std::make_shared<std::promise<index::QueryResult>>();
  std::future<index::QueryResult> future = promise->get_future();
  util::shared_pool().post([this, promise, x = std::move(x), top_k, trace_id,
                            enqueued_seconds]() mutable {
    // Re-establish the submitter's trace context on the pool thread,
    // then account the time the request sat in the queue as its first
    // span (start pinned to admission time, not task start).
    telemetry::TraceContextScope scope(trace_id);
    if (trace_id != 0 && telemetry::tracer().enabled()) {
      telemetry::TraceSpan wait;
      wait.name = "queue-wait";
      wait.category = "engine";
      wait.trace_id = trace_id;
      wait.thread_id = telemetry::current_thread_ordinal();
      wait.start_seconds = enqueued_seconds;
      wait.duration_seconds = telemetry::now_seconds() - enqueued_seconds;
      telemetry::tracer().record(std::move(wait));
    }
    try {
      telemetry::SpanTimer span("query", "engine");
      util::WallTimer timer;
      // Same intra-query fan-out as query(): at low load the
      // helpers start immediately (latency), at high load they
      // queue behind other submitted requests and the claiming
      // thread runs the backend itself (throughput).
      index::QueryOptions options;
      options.threads = workers_;
      index::QueryResult result = index_->query(x, top_k, options);
      record_latency(timer.millis());
      promise->set_value(std::move(result));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
    {
      // Notify under the lock: once a drain()ing destructor sees
      // pending_ == 0 it may free the engine, so no member may be
      // touched after this block releases the mutex.
      util::MutexLock lock(pending_mutex_);
      --pending_;
      queue_depth_metric().set(static_cast<double>(pending_));
      pending_cv_.notify_all();
    }
  });
  return future;
}

std::future<index::QueryResult> QueryEngine::submit(std::vector<float> x,
                                                    int top_k) {
  {
    // Bounded admission: block while max_pending requests are in
    // flight.  This is the serving tier's backpressure valve — callers
    // slow down instead of the queue growing without bound.
    util::MutexLock lock(pending_mutex_);
    if (pending_ >= max_pending_) {
      ++backpressure_waits_;
      backpressure_metric().inc();
    }
    while (pending_ >= max_pending_) {
      pending_cv_.wait(pending_mutex_);
    }
    ++pending_;
    peak_pending_ = std::max(peak_pending_, pending_);
    queue_depth_metric().set(static_cast<double>(pending_));
    queue_peak_metric().track_max(static_cast<double>(peak_pending_));
  }
  // The trace is rooted at admission: the queue-wait span starts here,
  // before the task reaches a pool thread.
  const bool traced = telemetry::tracer().enabled();
  const std::uint64_t trace_id =
      traced ? telemetry::tracer().mint_trace_id() : 0;
  const double enqueued = traced ? telemetry::now_seconds() : 0.0;
  return launch_async(std::move(x), top_k, trace_id, enqueued);
}

std::optional<std::future<index::QueryResult>> QueryEngine::try_submit(
    std::vector<float> x, int top_k) {
  {
    util::MutexLock lock(pending_mutex_);
    if (pending_ >= max_pending_) {
      // Load shedding: count the turn-away and give the caller the
      // decision instead of stalling them.
      ++rejections_;
      rejections_metric().inc();
      return std::nullopt;
    }
    ++pending_;
    peak_pending_ = std::max(peak_pending_, pending_);
    queue_depth_metric().set(static_cast<double>(pending_));
    queue_peak_metric().track_max(static_cast<double>(peak_pending_));
  }
  const bool traced = telemetry::tracer().enabled();
  const std::uint64_t trace_id =
      traced ? telemetry::tracer().mint_trace_id() : 0;
  const double enqueued = traced ? telemetry::now_seconds() : 0.0;
  return launch_async(std::move(x), top_k, trace_id, enqueued);
}

std::size_t QueryEngine::pending() const {
  util::MutexLock lock(pending_mutex_);
  return pending_;
}

void QueryEngine::drain() {
  util::MutexLock lock(pending_mutex_);
  while (pending_ != 0) {
    pending_cv_.wait(pending_mutex_);
  }
}

void QueryEngine::record_latency(double millis) const {
  // Registry first (lock-free), then the engine-local digest under its
  // mutex — the same sample feeds both, so the views cannot diverge.
  queries_metric().inc();
  latency_metric().observe(millis / 1e3);
  util::MutexLock lock(latency_mutex_);
  lifetime_latency_.add(millis);
  latency_window_.add(millis);
}

void QueryEngine::reset_latency() {
  util::MutexLock lock(latency_mutex_);
  lifetime_latency_ = util::RunningStats();
  latency_window_.clear();
}

LatencySummary QueryEngine::latency_summary() const {
  LatencySummary summary;
  std::vector<double> window;
  {
    util::MutexLock lock(latency_mutex_);
    summary.count = lifetime_latency_.count();
    summary.mean_ms = lifetime_latency_.mean();
    summary.max_ms = lifetime_latency_.max();
    window = latency_window_.samples();
  }
  if (window.empty()) {
    return summary;
  }
  summary.p50_ms = util::quantile(window, 0.5);
  summary.p95_ms = util::quantile(window, 0.95);
  summary.p99_ms = util::quantile(window, 0.99);
  return summary;
}

EngineStats QueryEngine::stats() const {
  EngineStats stats;
  stats.latency = latency_summary();
  util::MutexLock lock(pending_mutex_);
  stats.pending = pending_;
  stats.peak_pending = peak_pending_;
  stats.backpressure_waits = backpressure_waits_;
  stats.rejections = rejections_;
  return stats;
}

}  // namespace topk::serve
