// Serving facade over any index::SimilarityIndex: the host-side
// component a real-time retrieval service talks to.  The engine is
// backend-agnostic — an FPGA simulator, the CPU heap baseline or the
// GPU model all serve through the identical code path, so latency
// digests are directly comparable across backends.
//
// What it adds over calling the index directly:
//   * a persistent worker budget (no per-call thread spawning — all
//     execution runs on util::shared_pool() with dynamic claiming);
//   * synchronous query_batch() with per-query dynamic scheduling;
//   * an async submit() -> std::future path with a bounded request
//     queue (blocking backpressure, the standard admission control of
//     a serving tier);
//   * latency instrumentation: every query served through the engine
//     is timed, and latency_summary() reports count/mean/p50/p95/p99
//     via util::RunningStats and util::quantile; reset_latency()
//     starts a fresh measurement epoch (e.g. after warm-up).
//
// Thread-safety: all public methods may be called concurrently.  The
// destructor blocks until all pending async requests have completed,
// and futures stay valid past the engine's lifetime (the shared state
// is owned by the request).  The engine shares ownership of the index,
// so the index outlives every request by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "index/mutable_index.hpp"
#include "index/similarity_index.hpp"
#include "util/percentile.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

namespace topk::serve {

/// Configuration of one engine instance.
struct EngineConfig {
  /// Maximum concurrency per operation (0 = hardware concurrency).
  /// query() hands this to the backend as its intra-query budget;
  /// query_batch() fans whole queries instead.
  int workers = 0;
  /// Bound on queued-but-unfinished async requests; submit() blocks
  /// (backpressure) once this many are in flight.
  std::size_t max_pending = 1024;
  /// Ring-buffer capacity backing the latency percentile estimates —
  /// sized to the traffic a percentile should describe (a long-lived
  /// serving process never accumulates unbounded history).
  std::size_t latency_window = 4096;
};

/// Latency digest in milliseconds.  count/mean/max cover the current
/// measurement epoch (since construction or the last reset_latency());
/// the percentiles cover the most recent EngineConfig::latency_window
/// samples of that epoch.
struct LatencySummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Admission-control view of the engine, alongside the latency digest.
/// All counts cover the engine's lifetime (they are not reset by
/// reset_latency() — admission history is about capacity, not about
/// measurement epochs).
struct EngineStats {
  LatencySummary latency;
  /// Async requests admitted but not yet finished.
  std::size_t pending = 0;
  /// High-water mark of `pending` — how close the queue came to the
  /// max_pending admission bound.
  std::size_t peak_pending = 0;
  /// submit() calls that had to block on a full queue before being
  /// admitted.
  std::uint64_t backpressure_waits = 0;
  /// try_submit() calls turned away on a full queue.
  std::uint64_t rejections = 0;
};

class QueryEngine {
 public:
  /// Takes shared ownership of the index.  Throws
  /// std::invalid_argument for a null index, negative workers, zero
  /// max_pending, or a zero latency_window.
  explicit QueryEngine(std::shared_ptr<const index::SimilarityIndex> index,
                       EngineConfig config = {});

  /// Serving a mutable backend: queries flow through the identical
  /// path, and the engine additionally retains the mutation handle so
  /// callers reach insert_row/delete_row/delta_stats through
  /// mutable_index() while the engine serves.
  explicit QueryEngine(std::shared_ptr<index::MutableIndex> index,
                       EngineConfig config = {});

  /// Blocks until all pending async requests have finished.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Synchronous single query: the backend's intra-query path gets the
  /// whole worker budget.  Results are identical to index.query(x,
  /// top_k) at any worker count.  Throws like the backend.
  [[nodiscard]] index::QueryResult query(std::span<const float> x,
                                         int top_k) const;

  /// Synchronous batch: whole queries are claimed dynamically by up to
  /// `workers` threads (each query runs its backend path sequentially,
  /// maximising throughput).  Results align with input order and are
  /// identical to per-query query() calls.
  [[nodiscard]] std::vector<index::QueryResult> query_batch(
      const std::vector<std::vector<float>>& queries, int top_k) const;

  /// Async path: enqueues the query and returns immediately with a
  /// future (unless max_pending requests are already in flight, in
  /// which case it blocks until a slot frees — bounded-queue
  /// backpressure).  The request executes with the same intra-query
  /// fan-out as query(), so a lone request on an idle engine gets
  /// full parallelism while concurrent requests degrade gracefully
  /// to one thread each.  The vector is moved/copied into the
  /// request, so the caller may free its buffer at once.  Validation
  /// errors surface through the future as std::invalid_argument.
  [[nodiscard]] std::future<index::QueryResult> submit(std::vector<float> x,
                                                       int top_k);

  /// Non-blocking admission: like submit(), but a full queue returns
  /// std::nullopt immediately (counted in EngineStats::rejections)
  /// instead of blocking — the load-shedding flavour of backpressure
  /// for callers that would rather drop than stall.
  [[nodiscard]] std::optional<std::future<index::QueryResult>> try_submit(
      std::vector<float> x, int top_k);

  /// Requests admitted via submit() whose futures are not yet ready.
  [[nodiscard]] std::size_t pending() const;

  /// Blocks until no async request is in flight.
  void drain();

  /// Digest over every query served in the current epoch (sync and
  /// async).
  [[nodiscard]] LatencySummary latency_summary() const;

  /// Latency digest plus the admission-control counters (queue depth,
  /// peak depth, backpressure waits, rejections).
  [[nodiscard]] EngineStats stats() const;

  /// Starts a fresh measurement epoch: clears the lifetime stats and
  /// the percentile window.  Queries already in flight land in the new
  /// epoch.
  void reset_latency();

  /// The served backend (shared ownership held by the engine).
  [[nodiscard]] const index::SimilarityIndex& index() const noexcept {
    return *index_;
  }

  /// The mutation handle of the served backend, when it is mutable
  /// (constructed from a MutableIndex, or the index dynamically is
  /// one); null for sealed backends.  Mutations are safe while the
  /// engine serves — the mutable tier linearises them against
  /// concurrent queries.
  [[nodiscard]] std::shared_ptr<index::MutableIndex> mutable_index()
      const noexcept {
    return mutable_;
  }
  [[nodiscard]] int workers() const noexcept { return workers_; }
  [[nodiscard]] std::size_t latency_window() const noexcept {
    return latency_window_size_;
  }

 private:
  void record_latency(double millis) const;
  /// Executes one admitted async request on a pool thread and settles
  /// its promise; `trace_id`/`enqueued_seconds` carry the span context
  /// minted at admission (0 when tracing was off).
  std::future<index::QueryResult> launch_async(std::vector<float> x, int top_k,
                                               std::uint64_t trace_id,
                                               double enqueued_seconds);

  std::shared_ptr<const index::SimilarityIndex> index_;
  std::shared_ptr<index::MutableIndex> mutable_;
  int workers_;
  std::size_t max_pending_;
  std::size_t latency_window_size_;

  mutable util::Mutex pending_mutex_;
  util::CondVar pending_cv_;
  std::size_t pending_ TOPK_GUARDED_BY(pending_mutex_) = 0;
  // Plain guarded members (not atomics): every touch already happens
  // under pending_mutex_ on the admission path, so atomics would buy
  // nothing — and the registry mirrors them for scrapes.
  std::size_t peak_pending_ TOPK_GUARDED_BY(pending_mutex_) = 0;
  std::uint64_t backpressure_waits_ TOPK_GUARDED_BY(pending_mutex_) = 0;
  std::uint64_t rejections_ TOPK_GUARDED_BY(pending_mutex_) = 0;

  mutable util::Mutex latency_mutex_;
  mutable util::RunningStats lifetime_latency_ TOPK_GUARDED_BY(latency_mutex_);
  mutable util::PercentileWindow latency_window_ TOPK_GUARDED_BY(latency_mutex_);
};

}  // namespace topk::serve
