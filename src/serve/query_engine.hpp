// Serving facade over a TopKAccelerator: the host-side component a
// real-time retrieval service talks to.
//
// What it adds over calling the accelerator directly:
//   * a persistent worker budget (no per-call thread spawning — all
//     execution runs on serve::shared_pool() with dynamic claiming);
//   * synchronous query_batch() with per-query dynamic scheduling;
//   * an async submit() -> std::future path with a bounded request
//     queue (blocking backpressure, the standard admission control of
//     a serving tier);
//   * latency instrumentation: every query served through the engine
//     is timed, and latency_summary() reports count/mean/p50/p95/p99
//     via util::RunningStats and util::quantile.
//
// The wrapped accelerator quantises each query vector exactly once and
// reuses the raws across all core streams (core::quantize_query), so
// every path through the engine gets the amortised conversion.
//
// Thread-safety: all public methods may be called concurrently.  The
// destructor blocks until all pending async requests have completed,
// and futures stay valid past the engine's lifetime (the shared state
// is owned by the request).  The referenced accelerator must outlive
// the engine.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <future>
#include <mutex>
#include <span>
#include <vector>

#include "core/accelerator.hpp"
#include "util/stats.hpp"

namespace topk::serve {

/// Configuration of one engine instance.
struct EngineConfig {
  /// Maximum concurrency per operation (0 = hardware concurrency).
  /// query() fans its core streams across up to this many threads;
  /// query_batch() fans whole queries instead.
  int workers = 0;
  /// Bound on queued-but-unfinished async requests; submit() blocks
  /// (backpressure) once this many are in flight.
  std::size_t max_pending = 1024;
};

/// Latency digest in milliseconds.  count/mean/max cover the engine's
/// whole lifetime; the percentiles cover the most recent
/// QueryEngine::kLatencyWindow samples (a bounded ring buffer, so a
/// long-lived serving process never accumulates unbounded history).
struct LatencySummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class QueryEngine {
 public:
  /// Throws std::invalid_argument for negative workers or a zero
  /// max_pending.
  explicit QueryEngine(const core::TopKAccelerator& accelerator,
                       EngineConfig config = {});

  /// Blocks until all pending async requests have finished.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Synchronous single query: core streams fan out across the worker
  /// budget.  Bit-identical to accelerator.query(x, top_k) at any
  /// worker count.  Throws like TopKAccelerator::query.
  [[nodiscard]] core::QueryResult query(std::span<const float> x,
                                        int top_k) const;

  /// Synchronous batch: whole queries are claimed dynamically by up to
  /// `workers` threads (each query runs its core streams sequentially,
  /// maximising throughput).  Results align with input order and are
  /// bit-identical to per-query query() calls.
  [[nodiscard]] std::vector<core::QueryResult> query_batch(
      const std::vector<std::vector<float>>& queries, int top_k) const;

  /// Async path: enqueues the query and returns immediately with a
  /// future (unless max_pending requests are already in flight, in
  /// which case it blocks until a slot frees — bounded-queue
  /// backpressure).  The request executes with the same core-stream
  /// fan-out as query(), so a lone request on an idle engine gets
  /// full parallelism while concurrent requests degrade gracefully
  /// to one thread each.  The vector is moved/copied into the
  /// request, so the caller may free its buffer at once.  Validation
  /// errors surface through the future as std::invalid_argument.
  [[nodiscard]] std::future<core::QueryResult> submit(std::vector<float> x,
                                                      int top_k);

  /// Requests admitted via submit() whose futures are not yet ready.
  [[nodiscard]] std::size_t pending() const;

  /// Blocks until no async request is in flight.
  void drain();

  /// Digest over every query served so far (sync and async).
  [[nodiscard]] LatencySummary latency_summary() const;

  [[nodiscard]] const core::TopKAccelerator& accelerator() const noexcept {
    return accelerator_;
  }
  [[nodiscard]] int workers() const noexcept { return workers_; }

  /// Ring-buffer capacity backing the percentile estimates.
  static constexpr std::size_t kLatencyWindow = 4096;

 private:
  void record_latency(double millis) const;

  const core::TopKAccelerator& accelerator_;
  int workers_;
  std::size_t max_pending_;

  mutable std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::size_t pending_ = 0;

  mutable std::mutex latency_mutex_;
  mutable util::RunningStats lifetime_latency_;
  mutable std::vector<double> latency_window_;
  mutable std::size_t latency_window_next_ = 0;
};

}  // namespace topk::serve
