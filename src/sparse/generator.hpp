// Synthetic sparse-embedding matrix generators (paper Table III).
//
// The evaluation uses synthetic matrices with controlled row-density
// distributions — uniform and left-skewed Gamma(k=3, theta=4/3) — with
// 20 or 40 average non-zeros per row, M in {512, 1024}, and rows
// L2-normalised so that Top-K SpMV retrieves cosine-nearest rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace topk::sparse {

/// Row-density (non-zeros per row) distribution families from Table III.
enum class RowDistribution {
  kUniform,  ///< nnz/row ~ Uniform centred on the mean (paper "Uniform")
  kGamma,    ///< nnz/row ~ Gamma(3, 4/3) rescaled to the mean (paper "Γ")
};

[[nodiscard]] std::string to_string(RowDistribution dist);

/// Parameters for the synthetic generator.
struct GeneratorConfig {
  std::uint32_t rows = 1'000'000;   ///< N: embedding collection size.
  std::uint32_t cols = 1024;        ///< M: dense embedding dimension.
  double mean_nnz_per_row = 20.0;   ///< average non-zeros per row (20/40).
  RowDistribution distribution = RowDistribution::kUniform;
  /// Gamma shape/scale; defaults reproduce Γ(k=3, θ=4/3) whose mean (4)
  /// is rescaled to mean_nnz_per_row.
  double gamma_shape = 3.0;
  double gamma_scale = 4.0 / 3.0;
  bool l2_normalize = true;         ///< normalise rows (cosine similarity).
  std::uint64_t seed = 42;
};

/// Validates a config; throws std::invalid_argument on nonsense
/// (zero dims, mean below 1 or above cols, non-positive gamma params).
void validate(const GeneratorConfig& config);

/// Generates a synthetic sparse embedding matrix.  Every row gets a
/// sampled non-zero count (clamped to [1, cols]), distinct uniformly
/// chosen columns, and values uniform in (0, 1) before optional row
/// normalisation — non-negative as in the paper's unsigned fixed-point
/// setting.
[[nodiscard]] Csr generate_matrix(const GeneratorConfig& config);

/// Samples the number of non-zeros for one row (exposed for tests).
[[nodiscard]] std::uint32_t sample_row_nnz(const GeneratorConfig& config,
                                           util::Xoshiro256& rng);

/// Generates a dense non-negative query embedding of size `cols`,
/// L2-normalised.  Used as the SpMV input vector x.
[[nodiscard]] std::vector<float> generate_dense_vector(std::uint32_t cols,
                                                       util::Xoshiro256& rng);

/// Generates a query correlated with row `row` of `matrix`: the row is
/// densified and perturbed with `noise` relative Gaussian noise, then
/// normalised.  Gives examples a meaningful nearest-neighbour
/// structure (the source row should rank first for small noise).
[[nodiscard]] std::vector<float> generate_query_near_row(const Csr& matrix,
                                                         std::uint32_t row,
                                                         double noise,
                                                         util::Xoshiro256& rng);

}  // namespace topk::sparse
