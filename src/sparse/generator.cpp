#include "sparse/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace topk::sparse {

namespace {

/// Marsaglia-Tsang gamma sampling for shape >= 1 (our shapes are 3).
double sample_gamma(double shape, double scale, util::Xoshiro256& rng) {
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    // Box-Muller normal variate.
    const double u1 = rng.uniform();
    const double u2 = rng.uniform();
    const double z =
        std::sqrt(-2.0 * std::log(1.0 - u1)) * std::cos(6.283185307179586 * u2);
    const double v = std::pow(1.0 + c * z, 3.0);
    if (v <= 0.0) {
      continue;
    }
    const double u = rng.uniform();
    if (std::log(u) < 0.5 * z * z + d - d * v + d * std::log(v)) {
      return d * v * scale;
    }
  }
}

/// Samples `count` distinct columns in [0, cols).  Uses a hash set for
/// sparse draws; `count` is tiny relative to `cols` in our workloads.
void sample_distinct_columns(std::uint32_t cols, std::uint32_t count,
                             util::Xoshiro256& rng,
                             std::vector<std::uint32_t>& out) {
  out.clear();
  if (count * 2 >= cols) {
    // Dense case: partial Fisher-Yates over all columns.
    std::vector<std::uint32_t> pool(cols);
    for (std::uint32_t i = 0; i < cols; ++i) {
      pool[i] = i;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto j =
          i + static_cast<std::uint32_t>(rng.bounded(cols - i));
      std::swap(pool[i], pool[j]);
      out.push_back(pool[i]);
    }
  } else {
    std::unordered_set<std::uint32_t> seen;
    seen.reserve(count * 2);
    while (out.size() < count) {
      const auto c = static_cast<std::uint32_t>(rng.bounded(cols));
      if (seen.insert(c).second) {
        out.push_back(c);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

}  // namespace

std::string to_string(RowDistribution dist) {
  switch (dist) {
    case RowDistribution::kUniform:
      return "Uniform";
    case RowDistribution::kGamma:
      return "Gamma(3,4/3)";
  }
  return "Unknown";
}

void validate(const GeneratorConfig& config) {
  if (config.rows == 0 || config.cols == 0) {
    throw std::invalid_argument("GeneratorConfig: dimensions must be positive");
  }
  if (config.mean_nnz_per_row < 1.0 ||
      config.mean_nnz_per_row > static_cast<double>(config.cols)) {
    throw std::invalid_argument(
        "GeneratorConfig: mean_nnz_per_row must be in [1, cols]");
  }
  if (config.distribution == RowDistribution::kGamma &&
      (config.gamma_shape < 1.0 || config.gamma_scale <= 0.0)) {
    throw std::invalid_argument("GeneratorConfig: invalid gamma parameters");
  }
}

std::uint32_t sample_row_nnz(const GeneratorConfig& config, util::Xoshiro256& rng) {
  double nnz = 0.0;
  switch (config.distribution) {
    case RowDistribution::kUniform: {
      // Uniform over [mean/2, 3*mean/2]: mean matches, bounded spread.
      const double lo = config.mean_nnz_per_row * 0.5;
      const double hi = config.mean_nnz_per_row * 1.5;
      nnz = rng.uniform(lo, hi);
      break;
    }
    case RowDistribution::kGamma: {
      const double g = sample_gamma(config.gamma_shape, config.gamma_scale, rng);
      const double gamma_mean = config.gamma_shape * config.gamma_scale;
      nnz = g * config.mean_nnz_per_row / gamma_mean;
      break;
    }
  }
  const double clamped =
      std::clamp(std::nearbyint(nnz), 1.0, static_cast<double>(config.cols));
  return static_cast<std::uint32_t>(clamped);
}

Csr generate_matrix(const GeneratorConfig& config) {
  validate(config);
  util::Xoshiro256 rng(config.seed);

  std::vector<std::uint64_t> row_ptr(static_cast<std::size_t>(config.rows) + 1, 0);
  std::vector<std::uint32_t> row_counts(config.rows);
  std::uint64_t total_nnz = 0;
  for (std::uint32_t r = 0; r < config.rows; ++r) {
    row_counts[r] = sample_row_nnz(config, rng);
    total_nnz += row_counts[r];
    row_ptr[r + 1] = total_nnz;
  }

  std::vector<std::uint32_t> col_idx(total_nnz);
  std::vector<float> values(total_nnz);
  std::vector<std::uint32_t> cols_scratch;
  for (std::uint32_t r = 0; r < config.rows; ++r) {
    sample_distinct_columns(config.cols, row_counts[r], rng, cols_scratch);
    const std::uint64_t base = row_ptr[r];
    for (std::size_t i = 0; i < cols_scratch.size(); ++i) {
      col_idx[base + i] = cols_scratch[i];
      // Strictly positive so normalisation never divides by zero.
      values[base + i] = static_cast<float>(rng.uniform(0.01, 1.0));
    }
  }

  Csr matrix = Csr::from_parts(config.rows, config.cols, std::move(row_ptr),
                               std::move(col_idx), std::move(values));
  if (config.l2_normalize) {
    matrix.l2_normalize_rows();
  }
  return matrix;
}

std::vector<float> generate_dense_vector(std::uint32_t cols, util::Xoshiro256& rng) {
  std::vector<float> x(cols);
  double sum_sq = 0.0;
  for (auto& v : x) {
    v = static_cast<float>(rng.uniform(0.0, 1.0));
    sum_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  const auto inv_norm = static_cast<float>(1.0 / std::sqrt(sum_sq));
  for (auto& v : x) {
    v *= inv_norm;
  }
  return x;
}

std::vector<float> generate_query_near_row(const Csr& matrix, std::uint32_t row,
                                           double noise, util::Xoshiro256& rng) {
  if (row >= matrix.rows()) {
    throw std::out_of_range("generate_query_near_row: row out of range");
  }
  std::vector<float> x(matrix.cols(), 0.0f);
  const auto cols = matrix.row_cols(row);
  const auto vals = matrix.row_values(row);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    x[cols[i]] = vals[i];
  }
  double sum_sq = 0.0;
  for (auto& v : x) {
    // Non-negative perturbation keeps the vector in the unsigned range.
    const double perturbed =
        std::max(0.0, static_cast<double>(v) + noise * (rng.uniform() - 0.25));
    v = static_cast<float>(perturbed);
    sum_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  if (sum_sq > 0.0) {
    const auto inv_norm = static_cast<float>(1.0 / std::sqrt(sum_sq));
    for (auto& v : x) {
      v *= inv_norm;
    }
  }
  return x;
}

}  // namespace topk::sparse
