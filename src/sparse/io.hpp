// Binary and text serialisation for sparse matrices.
//
// The paper's matrices take minutes to generate at full scale; the
// benches cache them on disk.  The binary format is a simple
// little-endian image with a magic/version header.  A MatrixMarket-
// style text writer/reader is provided for interop with external
// tooling.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "sparse/csr.hpp"

namespace topk::sparse {

/// Writes a CSR matrix as a little-endian binary image.  Throws
/// std::runtime_error on I/O failure.
void save_binary(const Csr& matrix, const std::filesystem::path& path);
void save_binary(const Csr& matrix, std::ostream& os);

/// Reads a CSR matrix written by save_binary.  Throws
/// std::runtime_error on I/O failure or a malformed/corrupt image.
[[nodiscard]] Csr load_binary(const std::filesystem::path& path);
[[nodiscard]] Csr load_binary(std::istream& is);

/// Writes a MatrixMarket "coordinate real general" file (1-based
/// indices).  Throws std::runtime_error on I/O failure.
void save_matrix_market(const Csr& matrix, const std::filesystem::path& path);

/// Reads a MatrixMarket coordinate file (real or integer, general).
/// Throws std::runtime_error on parse failure.
[[nodiscard]] Csr load_matrix_market(const std::filesystem::path& path);

}  // namespace topk::sparse
