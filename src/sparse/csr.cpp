#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topk::sparse {

Csr Csr::from_coo(Coo coo) {
  coo.sum_duplicates();

  Csr out;
  out.rows_ = coo.rows();
  out.cols_ = coo.cols();
  out.row_ptr_.assign(static_cast<std::size_t>(coo.rows()) + 1, 0);
  out.col_idx_.resize(coo.nnz());
  out.val_.resize(coo.nnz());

  const auto& rows = coo.row_indices();
  const auto& cols = coo.col_indices();
  const auto& vals = coo.values();
  for (const std::uint32_t r : rows) {
    ++out.row_ptr_[r + 1];
  }
  for (std::size_t r = 0; r < out.rows_; ++r) {
    out.row_ptr_[r + 1] += out.row_ptr_[r];
  }
  // Input is sorted, so a straight copy preserves per-row column order.
  for (std::size_t i = 0; i < coo.nnz(); ++i) {
    out.col_idx_[i] = cols[i];
    out.val_[i] = vals[i];
  }
  return out;
}

Csr Csr::from_parts(std::uint32_t rows, std::uint32_t cols,
                    std::vector<std::uint64_t> row_ptr,
                    std::vector<std::uint32_t> col_idx, std::vector<float> values) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Csr: matrix dimensions must be positive");
  }
  if (row_ptr.size() != static_cast<std::size_t>(rows) + 1) {
    throw std::invalid_argument("Csr: row_ptr must have rows+1 entries");
  }
  if (row_ptr.front() != 0 || row_ptr.back() != col_idx.size() ||
      col_idx.size() != values.size()) {
    throw std::invalid_argument("Csr: inconsistent array sizes");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      throw std::invalid_argument("Csr: row_ptr must be non-decreasing");
    }
  }
  for (const std::uint32_t c : col_idx) {
    if (c >= cols) {
      throw std::invalid_argument("Csr: column index out of range");
    }
  }
  Csr out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_ptr_ = std::move(row_ptr);
  out.col_idx_ = std::move(col_idx);
  out.val_ = std::move(values);
  return out;
}

std::span<const std::uint32_t> Csr::row_cols(std::uint32_t r) const {
  const std::uint64_t begin = row_ptr_.at(r);
  const std::uint64_t end = row_ptr_.at(r + 1);
  return std::span<const std::uint32_t>(col_idx_).subspan(begin, end - begin);
}

std::span<const float> Csr::row_values(std::uint32_t r) const {
  const std::uint64_t begin = row_ptr_.at(r);
  const std::uint64_t end = row_ptr_.at(r + 1);
  return std::span<const float>(val_).subspan(begin, end - begin);
}

double Csr::row_dot(std::uint32_t r, std::span<const float> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Csr::row_dot: vector size mismatch");
  }
  const auto cols = row_cols(r);
  const auto vals = row_values(r);
  double acc = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    acc += static_cast<double>(vals[i]) * static_cast<double>(x[cols[i]]);
  }
  return acc;
}

void Csr::spmv(std::span<const float> x, std::span<float> y) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Csr::spmv: input vector size mismatch");
  }
  if (y.size() != rows_) {
    throw std::invalid_argument("Csr::spmv: output vector size mismatch");
  }
  for (std::uint32_t r = 0; r < rows_; ++r) {
    y[r] = static_cast<float>(row_dot(r, x));
  }
}

Csr Csr::slice_rows(std::uint32_t row_begin, std::uint32_t row_end) const {
  if (row_begin > row_end || row_end > rows_) {
    throw std::out_of_range("Csr::slice_rows: invalid row range");
  }
  Csr out;
  out.rows_ = row_end - row_begin;
  out.cols_ = cols_;
  out.row_ptr_.resize(static_cast<std::size_t>(out.rows_) + 1);
  const std::uint64_t base = row_ptr_[row_begin];
  for (std::uint32_t r = 0; r <= out.rows_; ++r) {
    out.row_ptr_[r] = row_ptr_[row_begin + r] - base;
  }
  const std::uint64_t nnz = row_ptr_[row_end] - base;
  out.col_idx_.assign(col_idx_.begin() + static_cast<std::ptrdiff_t>(base),
                      col_idx_.begin() + static_cast<std::ptrdiff_t>(base + nnz));
  out.val_.assign(val_.begin() + static_cast<std::ptrdiff_t>(base),
                  val_.begin() + static_cast<std::ptrdiff_t>(base + nnz));
  return out;
}

Coo Csr::to_coo() const {
  Coo out(rows_ == 0 ? 1 : rows_, cols_ == 0 ? 1 : cols_);
  out.reserve(nnz());
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      out.push_back(r, cols[i], vals[i]);
    }
  }
  return out;
}

void Csr::l2_normalize_rows() {
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const std::uint64_t begin = row_ptr_[r];
    const std::uint64_t end = row_ptr_[r + 1];
    double sum_sq = 0.0;
    for (std::uint64_t i = begin; i < end; ++i) {
      sum_sq += static_cast<double>(val_[i]) * static_cast<double>(val_[i]);
    }
    if (sum_sq <= 0.0) {
      continue;
    }
    const auto inv_norm = static_cast<float>(1.0 / std::sqrt(sum_sq));
    for (std::uint64_t i = begin; i < end; ++i) {
      val_[i] *= inv_norm;
    }
  }
}

std::size_t Csr::max_row_nnz() const noexcept {
  std::size_t max_nnz = 0;
  for (std::uint32_t r = 0; r < rows_; ++r) {
    max_nnz = std::max(max_nnz,
                       static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r]));
  }
  return max_nnz;
}

}  // namespace topk::sparse
