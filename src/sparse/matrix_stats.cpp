#include "sparse/matrix_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topk::sparse {

RowDensityStats row_density_stats(const Csr& matrix) {
  RowDensityStats stats;
  stats.rows = matrix.rows();
  stats.nnz = matrix.nnz();
  if (matrix.rows() == 0) {
    return stats;
  }

  std::vector<std::uint32_t> sizes(matrix.rows());
  double sum = 0.0;
  double sum_sq = 0.0;
  stats.min_nnz = UINT32_MAX;
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    const auto size = static_cast<std::uint32_t>(matrix.row_nnz(r));
    sizes[r] = size;
    stats.min_nnz = std::min(stats.min_nnz, size);
    stats.max_nnz = std::max(stats.max_nnz, size);
    stats.empty_rows += size == 0 ? 1 : 0;
    sum += size;
    sum_sq += static_cast<double>(size) * size;
  }
  const auto n = static_cast<double>(matrix.rows());
  stats.mean_nnz = sum / n;
  const double variance =
      std::max(0.0, sum_sq / n - stats.mean_nnz * stats.mean_nnz);
  stats.stddev_nnz = std::sqrt(variance);
  stats.density =
      static_cast<double>(matrix.nnz()) /
      (static_cast<double>(matrix.rows()) * static_cast<double>(matrix.cols()));

  // Gini via the sorted-rank formula: G = (2*sum_i i*x_i)/(n*sum x) -
  // (n+1)/n with 1-based ranks over ascending x.
  if (sum > 0.0) {
    std::sort(sizes.begin(), sizes.end());
    double weighted = 0.0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      weighted += static_cast<double>(i + 1) * sizes[i];
    }
    stats.gini = 2.0 * weighted / (n * sum) - (n + 1.0) / n;
    stats.gini = std::clamp(stats.gini, 0.0, 1.0);
  }
  return stats;
}

std::vector<std::uint64_t> row_density_histogram(const Csr& matrix, int buckets) {
  if (buckets <= 0) {
    throw std::invalid_argument("row_density_histogram: buckets must be positive");
  }
  std::vector<std::uint64_t> histogram(static_cast<std::size_t>(buckets), 0);
  const std::size_t max_nnz = matrix.max_row_nnz();
  const double width =
      max_nnz == 0 ? 1.0 : static_cast<double>(max_nnz + 1) / buckets;
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    const auto bucket = std::min<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(matrix.row_nnz(r)) / width),
        static_cast<std::size_t>(buckets) - 1);
    ++histogram[bucket];
  }
  return histogram;
}

}  // namespace topk::sparse
