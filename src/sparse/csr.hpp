// Compressed Sparse Row matrix.
//
// CSR is the repo's canonical in-memory format: the CPU baseline runs
// directly on it, the BS-CSR encoder consumes it, and the exact
// reference SpMV used for accuracy ground truth lives here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/coo.hpp"

namespace topk::sparse {

/// Immutable-after-construction CSR matrix with 64-bit row pointers
/// (paper-scale matrices exceed 2^32 non-zeros only marginally, but
/// the headroom is free) and 32-bit column indices.
class Csr {
 public:
  Csr() = default;

  /// Builds from COO.  The input is canonicalised (sorted row-major,
  /// duplicates summed) if needed.
  [[nodiscard]] static Csr from_coo(Coo coo);

  /// Builds directly from parts.  Throws std::invalid_argument if the
  /// arrays are inconsistent (wrong sizes, non-monotone row_ptr,
  /// column out of range).
  [[nodiscard]] static Csr from_parts(std::uint32_t rows, std::uint32_t cols,
                                      std::vector<std::uint64_t> row_ptr,
                                      std::vector<std::uint32_t> col_idx,
                                      std::vector<float> values);

  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return col_idx_.size(); }

  [[nodiscard]] const std::vector<std::uint64_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<float>& values() const noexcept { return val_; }

  /// Number of non-zeros in row `r`.
  [[nodiscard]] std::size_t row_nnz(std::uint32_t r) const {
    return static_cast<std::size_t>(row_ptr_.at(r + 1) - row_ptr_.at(r));
  }

  /// Column indices of row `r`.
  [[nodiscard]] std::span<const std::uint32_t> row_cols(std::uint32_t r) const;

  /// Values of row `r`.
  [[nodiscard]] std::span<const float> row_values(std::uint32_t r) const;

  /// Dot product of row `r` with dense vector `x` (double precision
  /// accumulation; the accuracy ground truth).  Throws
  /// std::invalid_argument if x.size() != cols().
  [[nodiscard]] double row_dot(std::uint32_t r, std::span<const float> x) const;

  /// Full SpMV y = A*x with double accumulation, single-precision
  /// output.  Throws std::invalid_argument on shape mismatch.
  void spmv(std::span<const float> x, std::span<float> y) const;

  /// Copies rows [row_begin, row_end) into a new matrix with the same
  /// column count.  Throws std::out_of_range on a bad range.
  [[nodiscard]] Csr slice_rows(std::uint32_t row_begin, std::uint32_t row_end) const;

  /// Converts back to (canonical) COO.
  [[nodiscard]] Coo to_coo() const;

  /// L2-normalises every non-empty row in place, making row dot
  /// products cosine similarities as in the paper's embedding setting.
  void l2_normalize_rows();

  /// Maximum number of non-zeros in any single row.
  [[nodiscard]] std::size_t max_row_nnz() const noexcept;

  /// Size in bytes of a standard CSR image (64-bit row_ptr + 32-bit
  /// col + 32-bit val), for the format-footprint comparisons.
  [[nodiscard]] std::size_t csr_bytes() const noexcept {
    return row_ptr_.size() * 8 + col_idx_.size() * 4 + val_.size() * 4;
  }

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<std::uint64_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<float> val_;
};

}  // namespace topk::sparse
