// Row-density statistics for sparse matrices.
//
// The paper's evaluation stresses that BS-CSR is "oblivious to the
// matrix non-zero entries distribution" (section III-B): performance
// depends only on total non-zeros, not on how they spread across
// rows.  These helpers quantify that spread — summary moments, a
// row-density histogram and the Gini coefficient of the row sizes —
// so the benches can show that uniform and Gamma matrices with very
// different imbalance stream identically.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace topk::sparse {

/// Summary of the nnz-per-row distribution.
struct RowDensityStats {
  std::uint64_t rows = 0;
  std::uint64_t nnz = 0;
  std::uint64_t empty_rows = 0;
  std::uint32_t min_nnz = 0;
  std::uint32_t max_nnz = 0;
  double mean_nnz = 0.0;
  double stddev_nnz = 0.0;
  /// Gini coefficient of the row sizes: 0 = perfectly uniform rows,
  /// -> 1 = all non-zeros concentrated in few rows.
  double gini = 0.0;
  /// Fraction of the matrix occupied by non-zeros (nnz / (rows*cols)).
  double density = 0.0;
};

/// Computes the summary in one pass plus a sort for the Gini.
[[nodiscard]] RowDensityStats row_density_stats(const Csr& matrix);

/// Histogram of nnz-per-row with `buckets` equal-width bins over
/// [0, max_nnz]; returns per-bucket row counts.  Throws
/// std::invalid_argument for non-positive bucket counts.
[[nodiscard]] std::vector<std::uint64_t> row_density_histogram(const Csr& matrix,
                                                               int buckets);

}  // namespace topk::sparse
