#include "sparse/io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace topk::sparse {

namespace {

constexpr std::uint64_t kMagic = 0x42534353'52763101ULL;  // "BSCSRv1" tag

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) {
    throw std::runtime_error("sparse::load_binary: truncated stream");
  }
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& is, std::uint64_t max_elems) {
  std::uint64_t size = 0;
  read_pod(is, size);
  if (size > max_elems) {
    throw std::runtime_error("sparse::load_binary: implausible array size");
  }
  std::vector<T> v(size);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  if (!is) {
    throw std::runtime_error("sparse::load_binary: truncated stream");
  }
  return v;
}

}  // namespace

void save_binary(const Csr& matrix, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod(os, matrix.rows());
  write_pod(os, matrix.cols());
  write_vector(os, matrix.row_ptr());
  write_vector(os, matrix.col_idx());
  write_vector(os, matrix.values());
  if (!os) {
    throw std::runtime_error("sparse::save_binary: write failure");
  }
}

void save_binary(const Csr& matrix, const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("sparse::save_binary: cannot open " + path.string());
  }
  save_binary(matrix, os);
}

Csr load_binary(std::istream& is) {
  std::uint64_t magic = 0;
  read_pod(is, magic);
  if (magic != kMagic) {
    throw std::runtime_error("sparse::load_binary: bad magic");
  }
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  read_pod(is, rows);
  read_pod(is, cols);
  // 2^34 entries (~128 GB) is a generous upper bound used purely to
  // reject corrupt headers before allocating.
  constexpr std::uint64_t kMaxElems = 1ULL << 34;
  auto row_ptr = read_vector<std::uint64_t>(is, kMaxElems);
  auto col_idx = read_vector<std::uint32_t>(is, kMaxElems);
  auto values = read_vector<float>(is, kMaxElems);
  return Csr::from_parts(rows, cols, std::move(row_ptr), std::move(col_idx),
                         std::move(values));
}

Csr load_binary(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("sparse::load_binary: cannot open " + path.string());
  }
  return load_binary(is);
}

void save_matrix_market(const Csr& matrix, const std::filesystem::path& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("sparse::save_matrix_market: cannot open " +
                             path.string());
  }
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << matrix.rows() << ' ' << matrix.cols() << ' ' << matrix.nnz() << '\n';
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    const auto cols = matrix.row_cols(r);
    const auto vals = matrix.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      os << (r + 1) << ' ' << (cols[i] + 1) << ' ' << vals[i] << '\n';
    }
  }
  if (!os) {
    throw std::runtime_error("sparse::save_matrix_market: write failure");
  }
}

Csr load_matrix_market(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("sparse::load_matrix_market: cannot open " +
                             path.string());
  }
  std::string line;
  if (!std::getline(is, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    throw std::runtime_error("sparse::load_matrix_market: missing header");
  }
  if (line.find("coordinate") == std::string::npos) {
    throw std::runtime_error("sparse::load_matrix_market: only coordinate supported");
  }
  // Skip comments.
  do {
    if (!std::getline(is, line)) {
      throw std::runtime_error("sparse::load_matrix_market: missing size line");
    }
  } while (!line.empty() && line[0] == '%');

  std::istringstream size_line(line);
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
  if (!(size_line >> rows >> cols >> nnz) || rows == 0 || cols == 0) {
    throw std::runtime_error("sparse::load_matrix_market: bad size line");
  }

  Coo coo(static_cast<std::uint32_t>(rows), static_cast<std::uint32_t>(cols));
  coo.reserve(nnz);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    std::uint64_t r = 0;
    std::uint64_t c = 0;
    double v = 0.0;
    if (!(is >> r >> c >> v) || r == 0 || c == 0 || r > rows || c > cols) {
      throw std::runtime_error("sparse::load_matrix_market: bad entry");
    }
    coo.push_back(static_cast<std::uint32_t>(r - 1),
                  static_cast<std::uint32_t>(c - 1), static_cast<float>(v));
  }
  return Csr::from_coo(std::move(coo));
}

}  // namespace topk::sparse
