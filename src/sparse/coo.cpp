#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace topk::sparse {

Coo::Coo(std::uint32_t rows, std::uint32_t cols) : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Coo: matrix dimensions must be positive");
  }
}

void Coo::reserve(std::size_t nnz) {
  row_.reserve(nnz);
  col_.reserve(nnz);
  val_.reserve(nnz);
}

void Coo::push_back(std::uint32_t row, std::uint32_t col, float value) {
  if (row >= rows_ || col >= cols_) {
    throw std::out_of_range("Coo::push_back: coordinates out of range");
  }
  row_.push_back(row);
  col_.push_back(col);
  val_.push_back(value);
}

void Coo::sort_row_major() {
  std::vector<std::size_t> order(nnz());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (row_[a] != row_[b]) {
      return row_[a] < row_[b];
    }
    return col_[a] < col_[b];
  });

  std::vector<std::uint32_t> new_row(nnz());
  std::vector<std::uint32_t> new_col(nnz());
  std::vector<float> new_val(nnz());
  for (std::size_t i = 0; i < order.size(); ++i) {
    new_row[i] = row_[order[i]];
    new_col[i] = col_[order[i]];
    new_val[i] = val_[order[i]];
  }
  row_ = std::move(new_row);
  col_ = std::move(new_col);
  val_ = std::move(new_val);
}

bool Coo::is_canonical() const noexcept {
  for (std::size_t i = 1; i < nnz(); ++i) {
    if (row_[i - 1] > row_[i]) {
      return false;
    }
    if (row_[i - 1] == row_[i] && col_[i - 1] >= col_[i]) {
      return false;
    }
  }
  return true;
}

void Coo::sum_duplicates() {
  if (nnz() == 0) {
    return;
  }
  if (!is_canonical()) {
    sort_row_major();
  }
  std::size_t out = 0;
  for (std::size_t i = 1; i < nnz(); ++i) {
    if (row_[i] == row_[out] && col_[i] == col_[out]) {
      val_[out] += val_[i];
    } else {
      ++out;
      row_[out] = row_[i];
      col_[out] = col_[i];
      val_[out] = val_[i];
    }
  }
  row_.resize(out + 1);
  col_.resize(out + 1);
  val_.resize(out + 1);
}

}  // namespace topk::sparse
