// Coordinate-format sparse matrix.
//
// COO is the repo's interchange format: generators and file readers
// produce COO, the CSR builder consumes it.  It also serves as the
// naive streaming baseline the paper compares BS-CSR against in
// Figure 3 (one (row, col, val) triple per non-zero, 96 bits each).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace topk::sparse {

/// One non-zero entry.
struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  float value = 0.0f;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Coordinate-format sparse matrix (structure-of-arrays).
class Coo {
 public:
  Coo() = default;

  /// Creates an empty matrix with the given shape.  Throws
  /// std::invalid_argument for zero dimensions.
  Coo(std::uint32_t rows, std::uint32_t cols);

  void reserve(std::size_t nnz);

  /// Appends a non-zero.  Throws std::out_of_range if the coordinates
  /// exceed the matrix shape.
  void push_back(std::uint32_t row, std::uint32_t col, float value);

  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return row_.size(); }

  [[nodiscard]] const std::vector<std::uint32_t>& row_indices() const noexcept {
    return row_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col_indices() const noexcept {
    return col_;
  }
  [[nodiscard]] const std::vector<float>& values() const noexcept { return val_; }

  [[nodiscard]] Triplet entry(std::size_t i) const {
    return Triplet{row_.at(i), col_.at(i), val_.at(i)};
  }

  /// Sorts entries row-major (row, then column).  Stable with respect
  /// to duplicate coordinates.
  void sort_row_major();

  /// True if entries are sorted row-major with no duplicate (row, col)
  /// pairs.
  [[nodiscard]] bool is_canonical() const noexcept;

  /// Merges duplicate coordinates by summing their values (requires
  /// calling sort_row_major first or does it internally).
  void sum_duplicates();

  /// Size in bytes of the naive COO stream from Figure 3: 32-bit row,
  /// 32-bit column, 32-bit value per non-zero.
  [[nodiscard]] std::size_t naive_stream_bytes() const noexcept {
    return nnz() * 12;
  }

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<std::uint32_t> row_;
  std::vector<std::uint32_t> col_;
  std::vector<float> val_;
};

}  // namespace topk::sparse
