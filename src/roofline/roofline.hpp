// Roofline-model helpers for Figure 6 (methodology of [4]).
//
// The paper's roofline uses non-zeros/second as "performance" and
// non-zeros per byte streamed as "operational intensity": BS-CSR with
// capacity B gives OI = B / 64 bytes, the COO baseline only 5/64.
// Attainable performance at OI under bandwidth BW and compute peak P
// is min(P, BW * OI).
#pragma once

#include <string>
#include <vector>

#include "core/design.hpp"
#include "core/packet_layout.hpp"
#include "hbmsim/hbm.hpp"

namespace topk::roofline {

/// A point of the performance/OI plane.
struct RooflinePoint {
  double operational_intensity = 0.0;  ///< nnz per byte
  double performance = 0.0;            ///< nnz per second
};

/// A machine ceiling: bandwidth roof + compute roof.
struct Ceiling {
  std::string name;
  double bandwidth_bytes_per_s = 0.0;
  double compute_peak = 0.0;  ///< nnz/s (infinite if 0)
};

/// Attainable performance min(peak, bw * oi); a zero peak means
/// bandwidth-only.  Throws std::invalid_argument for non-positive
/// bandwidth or negative oi.
[[nodiscard]] double attainable(const Ceiling& ceiling, double oi);

/// Log-spaced sweep of the ceiling between oi_min and oi_max
/// inclusive.  Throws std::invalid_argument on a bad range or fewer
/// than two points.
[[nodiscard]] std::vector<RooflinePoint> ceiling_series(const Ceiling& ceiling,
                                                        double oi_min,
                                                        double oi_max,
                                                        int points);

/// Ceiling of our FPGA design with `cores` active (Figure 6a's "1/8/
/// 16/32 cores" lines): bandwidth = cores * streaming channel BW,
/// compute = cores * B * clock / II.
[[nodiscard]] Ceiling fpga_ceiling(const core::DesignConfig& design,
                                   const core::PacketLayout& layout,
                                   const hbmsim::HbmConfig& hbm,
                                   int cores);

/// Operational intensity of a BS-CSR stream with capacity B (nnz/byte).
[[nodiscard]] double bscsr_intensity(const core::PacketLayout& layout);

/// Operational intensity of the naive COO stream of Figure 3
/// (12 bytes per non-zero).
[[nodiscard]] double coo_intensity();

/// Operational intensity of a CSR-style F32/F16 GPU SpMV (value +
/// index bytes per non-zero).
[[nodiscard]] double gpu_intensity(bool half);

}  // namespace topk::roofline
