#include "roofline/roofline.hpp"

#include <cmath>
#include <stdexcept>

#include "hbmsim/timing_model.hpp"

namespace topk::roofline {

double attainable(const Ceiling& ceiling, double oi) {
  if (ceiling.bandwidth_bytes_per_s <= 0.0) {
    throw std::invalid_argument("attainable: bandwidth must be positive");
  }
  if (oi < 0.0) {
    throw std::invalid_argument("attainable: negative operational intensity");
  }
  const double bandwidth_bound = ceiling.bandwidth_bytes_per_s * oi;
  if (ceiling.compute_peak <= 0.0) {
    return bandwidth_bound;
  }
  return std::min(ceiling.compute_peak, bandwidth_bound);
}

std::vector<RooflinePoint> ceiling_series(const Ceiling& ceiling, double oi_min,
                                          double oi_max, int points) {
  if (oi_min <= 0.0 || oi_max <= oi_min) {
    throw std::invalid_argument("ceiling_series: bad OI range");
  }
  if (points < 2) {
    throw std::invalid_argument("ceiling_series: need at least two points");
  }
  std::vector<RooflinePoint> series;
  series.reserve(static_cast<std::size_t>(points));
  const double log_min = std::log10(oi_min);
  const double log_max = std::log10(oi_max);
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    const double oi = std::pow(10.0, log_min + t * (log_max - log_min));
    series.push_back(RooflinePoint{oi, attainable(ceiling, oi)});
  }
  return series;
}

Ceiling fpga_ceiling(const core::DesignConfig& design,
                     const core::PacketLayout& layout,
                     const hbmsim::HbmConfig& hbm, int cores) {
  if (cores <= 0 || cores > hbm.channels) {
    throw std::invalid_argument("fpga_ceiling: cores out of range");
  }
  Ceiling ceiling;
  ceiling.name = std::to_string(cores) + " cores";
  ceiling.bandwidth_bytes_per_s = hbm.streaming_bytes_per_s(cores);
  const double clock = hbmsim::design_clock_hz(design);
  const double ii = hbmsim::initiation_interval(design);
  ceiling.compute_peak =
      static_cast<double>(cores) * layout.capacity * clock / ii;
  return ceiling;
}

double bscsr_intensity(const core::PacketLayout& layout) {
  return layout.nnz_per_byte();
}

double coo_intensity() { return 1.0 / 12.0; }

double gpu_intensity(bool half) { return half ? 1.0 / 6.0 : 1.0 / 8.0; }

}  // namespace topk::roofline
