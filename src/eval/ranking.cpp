#include "eval/ranking.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace topk::eval {

namespace {

void check_no_duplicates(std::span<const std::uint32_t> list, const char* name) {
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(list.size());
  for (const std::uint32_t item : list) {
    if (!seen.insert(item).second) {
      throw std::invalid_argument(std::string("kendall_tau: duplicate item in ") +
                                  name);
    }
  }
}

}  // namespace

double precision_at_k(std::span<const std::uint32_t> retrieved,
                      std::span<const std::uint32_t> relevant) {
  if (relevant.empty()) {
    throw std::invalid_argument("precision_at_k: empty relevant set");
  }
  std::unordered_set<std::uint32_t> relevant_set(relevant.begin(), relevant.end());
  std::size_t hits = 0;
  for (const std::uint32_t item : retrieved) {
    hits += relevant_set.count(item);
  }
  return static_cast<double>(hits) / static_cast<double>(relevant_set.size());
}

double kendall_tau(std::span<const std::uint32_t> retrieved,
                   std::span<const std::uint32_t> reference) {
  check_no_duplicates(retrieved, "retrieved");
  check_no_duplicates(reference, "reference");

  std::unordered_map<std::uint32_t, std::size_t> reference_rank;
  reference_rank.reserve(reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference_rank.emplace(reference[i], i);
  }

  // Ranks (in reference order) of the common items, listed in
  // retrieved order.
  std::vector<std::size_t> ranks;
  for (const std::uint32_t item : retrieved) {
    if (const auto it = reference_rank.find(item); it != reference_rank.end()) {
      ranks.push_back(it->second);
    }
  }
  const std::size_t n = ranks.size();
  if (n < 2) {
    return 1.0;
  }

  // O(n^2) pair counting; n <= K <= a few hundred in every experiment.
  long long concordant = 0;
  long long discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (ranks[i] < ranks[j]) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const auto pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

double ndcg(std::span<const double> retrieved_gains,
            std::span<const double> ideal_gains) {
  if (retrieved_gains.size() > ideal_gains.size()) {
    throw std::invalid_argument("ndcg: retrieved longer than ideal");
  }
  const auto dcg = [](std::span<const double> gains) {
    double sum = 0.0;
    for (std::size_t i = 0; i < gains.size(); ++i) {
      sum += gains[i] / std::log2(static_cast<double>(i) + 2.0);
    }
    return sum;
  };
  const double ideal = dcg(ideal_gains);
  if (ideal <= 0.0) {
    return 1.0;
  }
  return dcg(retrieved_gains) / ideal;
}

TopKQuality evaluate_topk(std::span<const core::TopKEntry> retrieved,
                          std::span<const core::TopKEntry> exact,
                          const std::function<double(std::uint32_t)>& true_score) {
  std::vector<std::uint32_t> retrieved_idx;
  retrieved_idx.reserve(retrieved.size());
  std::vector<double> retrieved_gains;
  retrieved_gains.reserve(retrieved.size());
  for (const core::TopKEntry& entry : retrieved) {
    retrieved_idx.push_back(entry.index);
    retrieved_gains.push_back(true_score(entry.index));
  }

  std::vector<std::uint32_t> exact_idx;
  exact_idx.reserve(exact.size());
  std::vector<double> ideal_gains;
  ideal_gains.reserve(exact.size());
  for (const core::TopKEntry& entry : exact) {
    exact_idx.push_back(entry.index);
    ideal_gains.push_back(entry.value);
  }

  TopKQuality quality;
  quality.precision = precision_at_k(retrieved_idx, exact_idx);
  quality.kendall_tau = kendall_tau(retrieved_idx, exact_idx);
  quality.ndcg = ndcg(retrieved_gains, ideal_gains);
  return quality;
}

}  // namespace topk::eval
