// Ranking-quality metrics for Top-K retrieval (paper section V-D).
//
// The paper evaluates its approximation with three standard
// recommender-system metrics [27]:
//  * Precision@K — fraction of the exact top-K rows retrieved
//    (order-insensitive);
//  * Kendall's tau — pairwise order agreement between the retrieved
//    ranking and the exact ranking, computed over the items common to
//    both lists (order-sensitive);
//  * NDCG — discounted cumulative gain of the retrieved list with the
//    exact similarity scores as graded relevance, normalised by the
//    ideal (exact) ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/topk_spmv.hpp"

namespace topk::eval {

/// Precision@K: |retrieved ∩ relevant| / |relevant|.  Throws
/// std::invalid_argument if `relevant` is empty.
[[nodiscard]] double precision_at_k(std::span<const std::uint32_t> retrieved,
                                    std::span<const std::uint32_t> relevant);

/// Kendall's tau over the items present in both rankings: concordant
/// minus discordant pairs over all pairs.  Lists with fewer than two
/// common items agree trivially (returns 1).  Throws
/// std::invalid_argument if either list contains duplicates.
[[nodiscard]] double kendall_tau(std::span<const std::uint32_t> retrieved,
                                 std::span<const std::uint32_t> reference);

/// NDCG of a gain sequence in retrieved order against the ideal gain
/// sequence (sorted descending).  Uses the standard log2(i + 2)
/// position discount.  Returns 1 for an all-zero ideal.  Throws
/// std::invalid_argument if retrieved is longer than ideal.
[[nodiscard]] double ndcg(std::span<const double> retrieved_gains,
                          std::span<const double> ideal_gains);

/// All three metrics for a retrieved Top-K list against the exact one.
struct TopKQuality {
  double precision = 0.0;
  double kendall_tau = 0.0;
  double ndcg = 0.0;
};

/// Convenience evaluation of an approximate result against the exact
/// Top-K.  `true_score(row)` must return the exact similarity of any
/// retrieved row (needed for NDCG gains of rows outside the exact
/// top-K).  Both lists must be sorted descending by their own scores.
[[nodiscard]] TopKQuality evaluate_topk(
    std::span<const core::TopKEntry> retrieved,
    std::span<const core::TopKEntry> exact,
    const std::function<double(std::uint32_t)>& true_score);

}  // namespace topk::eval
