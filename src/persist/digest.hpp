// SHA-256 digests for deployment images.
//
// A persisted shard deployment is only trustworthy if a bit flip on
// disk is caught before the bytes reach the accelerator, so every
// image file's digest is recorded in the deployment manifest and
// re-verified on load (persist/deployment.hpp).  The implementation is
// the plain FIPS 180-4 compression function — no external dependency,
// and throughput (hundreds of MB/s) is far above the encoder the warm
// path exists to skip.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>

namespace topk::persist {

/// Incremental SHA-256 hasher (FIPS 180-4).
class Sha256 {
 public:
  Sha256();

  /// Absorbs `bytes` more input bytes.
  void update(const void* data, std::size_t bytes);

  /// Finalises and returns the 32-byte digest.  The hasher must not be
  /// reused afterwards.
  [[nodiscard]] std::array<std::uint8_t, 32> finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Lower-case hex SHA-256 of a byte span.
[[nodiscard]] std::string sha256_hex(std::span<const std::uint8_t> bytes);

/// Lower-case hex SHA-256 of a file's contents.  Throws
/// std::runtime_error (naming the file) when it cannot be read.
[[nodiscard]] std::string sha256_file(const std::filesystem::path& path);

}  // namespace topk::persist
