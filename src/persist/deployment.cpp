#include "persist/deployment.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/accelerator.hpp"
#include "core/bscsr_io.hpp"
#include "index/registry.hpp"
#include "persist/digest.hpp"
#include "sparse/io.hpp"

namespace topk::persist {

namespace {

constexpr const char* kManifestMagic = "topk-deployment";
// "TOPKFPG1": per-shard image holding the per-core BS-CSR streams.
constexpr std::uint64_t kFpgaImageMagic = 0x544F504B'46504731ULL;
constexpr const char* kFormatFpga = "fpga";
constexpr const char* kFormatCsr = "csr";

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& value, const std::filesystem::path& path) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) {
    throw std::runtime_error("load_deployment: truncated image " +
                             path.string());
  }
}

core::ValueKind parse_value_kind(const std::string& token,
                                 const std::filesystem::path& manifest) {
  for (const core::ValueKind kind :
       {core::ValueKind::kFixed, core::ValueKind::kFloat32,
        core::ValueKind::kSignedFixed}) {
    if (core::to_string(kind) == token) {
      return kind;
    }
  }
  throw std::runtime_error("load_deployment: " + manifest.string() +
                           ": unknown value kind '" + token + "'");
}

// ------------------------------------------------------- fpga shard images

/// The multi-core device image of one fpga-sim shard: core row ranges
/// (local to the shard) followed by one bscsr_io stream per core.
void write_fpga_image(const std::filesystem::path& path,
                      const core::TopKAccelerator& accelerator) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("save_deployment: cannot open " + path.string());
  }
  write_pod(os, kFpgaImageMagic);
  write_pod(os,
            static_cast<std::uint32_t>(accelerator.core_streams().size()));
  for (std::size_t core = 0; core < accelerator.core_streams().size(); ++core) {
    write_pod(os, accelerator.partitions()[core].row_begin);
    write_pod(os, accelerator.partitions()[core].row_end);
    core::save_bscsr(accelerator.core_streams()[core], os);
  }
  if (!os) {
    throw std::runtime_error("save_deployment: write failure on " +
                             path.string());
  }
}

struct FpgaImage {
  std::vector<core::Partition> partitions;
  std::vector<core::BsCsrMatrix> streams;
};

FpgaImage read_fpga_image(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("load_deployment: cannot open " + path.string());
  }
  std::uint64_t magic = 0;
  read_pod(is, magic, path);
  if (magic != kFpgaImageMagic) {
    throw std::runtime_error("load_deployment: bad magic in " + path.string());
  }
  std::uint32_t cores = 0;
  read_pod(is, cores, path);
  if (cores == 0 || cores > 4096) {
    throw std::runtime_error("load_deployment: implausible core count in " +
                             path.string());
  }
  FpgaImage image;
  image.partitions.reserve(cores);
  image.streams.reserve(cores);
  for (std::uint32_t core = 0; core < cores; ++core) {
    core::Partition range;
    read_pod(is, range.row_begin, path);
    read_pod(is, range.row_end, path);
    image.partitions.push_back(range);
    try {
      image.streams.push_back(core::load_bscsr(is));
    } catch (const std::runtime_error& error) {
      throw std::runtime_error("load_deployment: " + path.string() + ": " +
                               error.what());
    }
  }
  return image;
}

// --------------------------------------------------------------- manifest

/// The manifest is whitespace-tokenised, so labels and backend names
/// must be single tokens (registry keys and generated filenames are by
/// construction; builder labels and third-party backend names are
/// free-form).  Checked before any file is touched so a bad token
/// cannot clobber an existing deployment.
void require_single_token(const std::string& value, const char* what) {
  if (value.empty() || value.find_first_of(" \t\n") != std::string::npos) {
    throw std::invalid_argument(std::string("save_deployment: ") + what +
                                " '" + value +
                                "' must be a non-empty single token");
  }
}

void write_manifest(const std::filesystem::path& path,
                    const DeploymentManifest& manifest) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("save_deployment: cannot open " + path.string());
  }
  os << kManifestMagic << ' ' << manifest.version << '\n';
  os << "label " << manifest.label << '\n';
  os << "generation " << manifest.generation << '\n';
  os << "rows " << manifest.rows << '\n';
  os << "cols " << manifest.cols << '\n';
  const core::DesignConfig& design = manifest.design;
  os << "design " << core::to_string(design.value_kind) << ' '
     << design.value_bits << ' ' << design.cores << ' ' << design.k << ' '
     << design.rows_per_packet << ' ' << (design.enforce_r_in_encoder ? 1 : 0)
     << ' ' << design.packet_bits << '\n';
  os << "tombstones " << manifest.tombstones.size();
  for (const std::uint32_t id : manifest.tombstones) {
    os << ' ' << id;
  }
  os << '\n';
  os << "shards " << manifest.shards.size() << '\n';
  for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
    const ShardImage& image = manifest.shards[s];
    os << "shard " << s << ' ' << image.range.row_begin << ' '
       << image.range.row_end << ' ' << image.backend << ' ' << image.format
       << ' ' << image.file << ' ' << image.bytes << ' ' << image.digest
       << '\n';
  }
  os << "end\n";
  if (!os) {
    throw std::runtime_error("save_deployment: write failure on " +
                             path.string());
  }
}

}  // namespace

DeploymentManifest read_manifest(const std::filesystem::path& dir) {
  const std::filesystem::path path = dir / kManifestFilename;
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("load_deployment: cannot open manifest " +
                             path.string());
  }
  const auto fail = [&](const std::string& why) -> void {
    throw std::runtime_error("load_deployment: " + path.string() + ": " + why);
  };
  const auto expect_key = [&](const char* key) {
    std::string token;
    if (!(is >> token) || token != key) {
      fail("expected '" + std::string(key) + "' field");
    }
  };

  DeploymentManifest manifest;
  std::string magic;
  if (!(is >> magic >> manifest.version)) {
    fail("missing magic/version header");
  }
  if (magic != kManifestMagic) {
    fail("bad magic '" + magic + "'");
  }
  if (manifest.version > kManifestVersion) {
    fail("manifest version " + std::to_string(manifest.version) +
         " is newer than the supported version " +
         std::to_string(kManifestVersion));
  }
  if (manifest.version < 1) {
    fail("invalid manifest version " + std::to_string(manifest.version));
  }

  expect_key("label");
  if (!(is >> manifest.label)) {
    fail("missing label");
  }
  // Version 1 predates the mutable tier: no generation line, no
  // tombstones — it parses as generation 0 with an empty set, which is
  // exactly what a never-compacted sealed deployment is.
  if (manifest.version >= 2) {
    expect_key("generation");
    if (!(is >> manifest.generation)) {
      fail("missing generation");
    }
  }
  expect_key("rows");
  if (!(is >> manifest.rows) || manifest.rows == 0) {
    fail("missing or zero rows");
  }
  expect_key("cols");
  if (!(is >> manifest.cols) || manifest.cols == 0) {
    fail("missing or zero cols");
  }

  expect_key("design");
  std::string kind_token;
  int enforce_r = 0;
  core::DesignConfig& design = manifest.design;
  if (!(is >> kind_token >> design.value_bits >> design.cores >> design.k >>
        design.rows_per_packet >> enforce_r >> design.packet_bits)) {
    fail("malformed design line");
  }
  design.value_kind = parse_value_kind(kind_token, path);
  design.enforce_r_in_encoder = enforce_r != 0;
  try {
    core::validate(design);
  } catch (const std::invalid_argument& error) {
    fail(std::string("invalid design: ") + error.what());
  }

  if (manifest.version >= 2) {
    std::size_t tombstone_count = 0;
    expect_key("tombstones");
    if (!(is >> tombstone_count) || tombstone_count > manifest.rows) {
      fail("missing or implausible tombstone count");
    }
    manifest.tombstones.reserve(tombstone_count);
    for (std::size_t t = 0; t < tombstone_count; ++t) {
      std::uint32_t id = 0;
      if (!(is >> id)) {
        fail("truncated tombstone list");
      }
      if (id >= manifest.rows) {
        fail("tombstone id " + std::to_string(id) +
             " outside the row space");
      }
      if (!manifest.tombstones.empty() && manifest.tombstones.back() >= id) {
        fail("tombstone ids are not strictly increasing");
      }
      manifest.tombstones.push_back(id);
    }
  }

  std::size_t shard_count = 0;
  expect_key("shards");
  if (!(is >> shard_count) || shard_count == 0 || shard_count > 65536) {
    fail("missing or implausible shard count");
  }
  std::uint32_t expected_begin = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    std::size_t id = 0;
    ShardImage image;
    expect_key("shard");
    if (!(is >> id >> image.range.row_begin >> image.range.row_end >>
          image.backend >> image.format >> image.file >> image.bytes >>
          image.digest)) {
      fail("malformed shard line " + std::to_string(s));
    }
    const std::string tag = "shard " + std::to_string(s);
    if (id != s) {
      fail(tag + ": out-of-order shard id " + std::to_string(id));
    }
    if (image.range.row_end <= image.range.row_begin ||
        image.range.row_begin != expected_begin) {
      fail(tag + ": shard plan is not contiguous from row 0");
    }
    if (image.format != kFormatFpga && image.format != kFormatCsr) {
      fail(tag + ": unknown image format '" + image.format + "'");
    }
    if (image.digest.size() != 64 ||
        image.digest.find_first_not_of("0123456789abcdef") !=
            std::string::npos) {
      fail(tag + ": malformed digest");
    }
    expected_begin = image.range.row_end;
    manifest.shards.push_back(std::move(image));
  }
  if (expected_begin != manifest.rows) {
    fail("shard plan covers " + std::to_string(expected_begin) +
         " rows but the manifest declares " + std::to_string(manifest.rows));
  }
  expect_key("end");
  return manifest;
}

// ---------------------------------------------------------------- save

void save_deployment(const shard::ShardedIndex& index,
                     const std::filesystem::path& dir) {
  save_deployment(index, dir, DeploymentMeta{});
}

void save_deployment(const shard::ShardedIndex& index,
                     const std::filesystem::path& dir,
                     const DeploymentMeta& meta) {
  DeploymentManifest manifest;
  manifest.label = index.describe().backend;
  manifest.generation = meta.generation;
  manifest.rows = index.rows();
  manifest.cols = index.cols();
  for (std::size_t t = 0; t < meta.tombstones.size(); ++t) {
    if (meta.tombstones[t] >= manifest.rows) {
      throw std::invalid_argument(
          "save_deployment: tombstone id " +
          std::to_string(meta.tombstones[t]) + " outside the row space [0, " +
          std::to_string(manifest.rows) + ")");
    }
    if (t > 0 && meta.tombstones[t - 1] >= meta.tombstones[t]) {
      throw std::invalid_argument(
          "save_deployment: tombstone ids must be strictly increasing");
    }
  }
  manifest.tombstones = meta.tombstones;

  // Validate every shard before touching the directory: a free-form
  // label, a backend name that would break the tokenised manifest, or
  // a shard with no image format must fail cleanly, not after the
  // images (or a previous deployment's manifest) have been rewritten.
  require_single_token(manifest.label, "label");
  for (std::size_t s = 0; s < index.shard_count(); ++s) {
    const index::SimilarityIndex* inner = &index.shard(s).primary();
    require_single_token(inner->describe().backend, "shard backend");
    // Persistable backends either expose their host CSR (saved as a
    // CSR image) or are the FPGA simulator (saved as a device image).
    if (dynamic_cast<const index::FpgaSimIndex*>(inner) == nullptr &&
        inner->host_csr() == nullptr) {
      throw std::invalid_argument(
          "save_deployment: shard " + std::to_string(s) + " backend '" +
          inner->describe().backend + "' has no persistable image format");
    }
  }
  std::filesystem::create_directories(dir);

  bool have_design = false;
  for (std::size_t s = 0; s < index.shard_count(); ++s) {
    const shard::Shard& shard = index.shard(s);
    // Replicas of a shard are interchangeable by construction, so one
    // image per shard covers any replica count — a warm load replays
    // it as many times as IndexOptions::replicas asks for.
    const index::SimilarityIndex* primary = &shard.primary();
    ShardImage image;
    image.range = shard.range;
    image.backend = primary->describe().backend;

    const sparse::Csr* csr = primary->host_csr();
    if (const auto* fpga = dynamic_cast<const index::FpgaSimIndex*>(primary)) {
      const core::DesignConfig& config = fpga->accelerator().config();
      if (!have_design) {
        manifest.design = config;
        have_design = true;
      } else if (config != manifest.design) {
        throw std::invalid_argument(
            "save_deployment: fpga-sim shards use differing designs (one "
            "manifest records one design)");
      }
      image.format = kFormatFpga;
      image.file = "shard-" + std::to_string(s) + ".fpga.img";
      write_fpga_image(dir / image.file, fpga->accelerator());
      csr = nullptr;  // the device image wins even if a host CSR existed
    } else if (csr == nullptr) {
      throw std::invalid_argument("save_deployment: shard " +
                                  std::to_string(s) + " backend '" +
                                  image.backend +
                                  "' has no persistable image format");
    }
    if (csr != nullptr) {
      image.format = kFormatCsr;
      image.file = "shard-" + std::to_string(s) + ".csr.img";
      sparse::save_binary(*csr, dir / image.file);
    }
    image.bytes = std::filesystem::file_size(dir / image.file);
    image.digest = sha256_file(dir / image.file);
    manifest.shards.push_back(std::move(image));
  }

  write_manifest(dir / kManifestFilename, manifest);
}

// ---------------------------------------------------------------- load

std::shared_ptr<shard::ShardedIndex> load_deployment(
    const std::filesystem::path& dir, const index::IndexOptions& options) {
  const DeploymentManifest manifest = read_manifest(dir);
  // options.replicas loads the same digest-verified image that many
  // times — the digests guarantee every replica is byte-identical, so
  // replication costs only the extra loads, never a re-encode.
  const int replica_count = std::max(1, options.replicas);

  std::vector<shard::Shard> shards;
  shards.reserve(manifest.shards.size());
  for (const ShardImage& image : manifest.shards) {
    const std::filesystem::path path = dir / image.file;
    if (!std::filesystem::exists(path)) {
      throw std::runtime_error("load_deployment: missing shard image " +
                               path.string());
    }
    const std::string digest = sha256_file(path);
    if (digest != image.digest) {
      throw std::runtime_error("load_deployment: digest mismatch for " +
                               path.string() + " (manifest " + image.digest +
                               ", file " + digest + ")");
    }

    std::vector<std::shared_ptr<const index::SimilarityIndex>> replicas;
    replicas.reserve(static_cast<std::size_t>(replica_count));
    if (image.backend == "fpga-sim") {
      if (image.format != kFormatFpga) {
        throw std::runtime_error("load_deployment: " + path.string() +
                                 ": format '" + image.format +
                                 "' does not match backend fpga-sim");
      }
      // Read and audit the image once; each replica adopts its own
      // accelerator off an in-memory copy of the parsed streams
      // (memcpy-speed, no repeated disk I/O — warm-load time must not
      // grow with the replica count).
      FpgaImage fpga = read_fpga_image(path);
      std::uint32_t stream_rows = 0;
      for (const core::BsCsrMatrix& stream : fpga.streams) {
        stream_rows += stream.rows();
        if (stream.cols() != manifest.cols) {
          throw std::runtime_error("load_deployment: " + path.string() +
                                   ": stream cols disagree with the manifest");
        }
      }
      if (stream_rows != image.range.rows()) {
        throw std::runtime_error(
            "load_deployment: " + path.string() + ": image rows (" +
            std::to_string(stream_rows) +
            ") disagree with the manifest shard range (" +
            std::to_string(image.range.rows()) + ")");
      }
      for (int r = 0; r < replica_count; ++r) {
        FpgaImage parts =
            r + 1 < replica_count ? fpga : std::move(fpga);  // last one moves
        try {
          auto accelerator = std::make_shared<const core::TopKAccelerator>(
              core::TopKAccelerator::from_parts(manifest.design,
                                                std::move(parts.partitions),
                                                std::move(parts.streams)));
          replicas.push_back(
              std::make_shared<index::FpgaSimIndex>(std::move(accelerator)));
        } catch (const std::invalid_argument& error) {
          throw std::runtime_error("load_deployment: " + path.string() + ": " +
                                   error.what());
        }
      }
    } else {
      if (image.format != kFormatCsr) {
        throw std::runtime_error("load_deployment: " + path.string() +
                                 ": format '" + image.format +
                                 "' does not match backend " + image.backend);
      }
      sparse::Csr csr;
      try {
        csr = sparse::load_binary(path);
      } catch (const std::exception& error) {
        throw std::runtime_error("load_deployment: " + path.string() + ": " +
                                 error.what());
      }
      if (csr.rows() != image.range.rows()) {
        throw std::runtime_error(
            "load_deployment: " + path.string() + ": image rows (" +
            std::to_string(csr.rows()) +
            ") disagree with the manifest shard range (" +
            std::to_string(image.range.rows()) + ")");
      }
      if (csr.cols() != manifest.cols) {
        throw std::runtime_error("load_deployment: " + path.string() +
                                 ": image cols (" + std::to_string(csr.cols()) +
                                 ") disagree with the manifest (" +
                                 std::to_string(manifest.cols) + ")");
      }
      index::IndexOptions inner_options = options;
      inner_options.design = manifest.design;
      inner_options.deployment_dir.clear();
      inner_options.replicas = 1;  // replication lives at the shard tier
      // CSR-backed replicas share one in-memory copy of the image.
      const auto shared_csr =
          std::make_shared<const sparse::Csr>(std::move(csr));
      for (int r = 0; r < replica_count; ++r) {
        try {
          replicas.push_back(
              index::make_index(image.backend, shared_csr, inner_options));
        } catch (const std::invalid_argument& error) {
          throw std::runtime_error("load_deployment: " +
                                   (dir / kManifestFilename).string() +
                                   ": backend '" + image.backend +
                                   "': " + error.what());
        }
      }
    }
    shards.push_back(shard::Shard{image.range, std::move(replicas)});
  }

  try {
    return std::make_shared<shard::ShardedIndex>(std::move(shards),
                                                 manifest.label);
  } catch (const std::invalid_argument& error) {
    throw std::runtime_error("load_deployment: " +
                             (dir / kManifestFilename).string() + ": " +
                             error.what());
  }
}

}  // namespace topk::persist

namespace topk::shard {

// Defined here, not in shard/sharded_index.cpp: the shard layer
// declares the warm-load entry point but must not depend on the
// durability layer above it (tools/analysis/layers.toml), so the
// persist module — which already owns load_deployment — provides the
// out-of-line definition.
std::shared_ptr<ShardedIndex> ShardedIndexBuilder::from_deployment(
    const std::filesystem::path& dir, const index::IndexOptions& options) {
  return persist::load_deployment(dir, options);
}

}  // namespace topk::shard
