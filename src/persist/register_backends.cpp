// Registration of the composed backends — "sharded-<inner>" and
// "mutable-sharded-<inner>" — into the index::make_index registry.
//
// These factories construct shard::ShardedIndex /
// shard::MutableShardedIndex and warm-load persisted deployments, so
// they belong to the durability layer: the registry itself
// (src/index/) sits BELOW shard/ and persist/ in the architecture
// manifest (tools/analysis/layers.toml) and must not know either
// module.  The seeding therefore happens here, bottom-up, through the
// public register_backend() extension point — the same mechanism an
// out-of-tree backend would use.
//
// Registration runs at static-initialization time (the `registered`
// constant below).  That is safe and deterministic: register_backend()
// reaches the registry through a function-local static, so the table
// exists whenever this initializer runs, whatever the TU order.  The
// library is linked as a CMake OBJECT library precisely so this TU —
// which exports no symbol anything references — is present in every
// binary instead of being dropped by archive-selection rules.
#include "persist/register_backends.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "index/registry.hpp"
#include "persist/deployment.hpp"
#include "shard/mutable_sharded_index.hpp"
#include "shard/sharded_index.hpp"
#include "sparse/csr.hpp"

namespace topk::persist {

namespace {

/// Rebuilds the full host CSR of a warm-loaded sharded base by
/// concatenating its per-shard slices — the matrix the Compactor folds
/// against.  Returns null when any shard's backend holds no host CSR
/// (fpga-sim: the quantised device image cannot reproduce the exact
/// host values, so such a warm load serves but cannot compact).
std::shared_ptr<const sparse::Csr> reconstruct_base_matrix(
    const shard::ShardedIndex& base) {
  std::vector<std::uint64_t> row_ptr{0};
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;
  for (std::size_t s = 0; s < base.shard_count(); ++s) {
    const sparse::Csr* slice = base.shard(s).primary().host_csr();
    if (slice == nullptr) {
      return nullptr;
    }
    const std::uint64_t offset = row_ptr.back();
    for (std::uint32_t r = 1; r <= slice->rows(); ++r) {
      row_ptr.push_back(offset + slice->row_ptr()[r]);
    }
    col_idx.insert(col_idx.end(), slice->col_idx().begin(),
                   slice->col_idx().end());
    values.insert(values.end(), slice->values().begin(),
                  slice->values().end());
  }
  return std::make_shared<const sparse::Csr>(
      sparse::Csr::from_parts(base.rows(), base.cols(), std::move(row_ptr),
                              std::move(col_idx), std::move(values)));
}

/// The inner backends every composed variant wraps.  cpu-simd-f16 is
/// deliberately absent: the approximate screen has no exact gather
/// contract to compose under.
constexpr const char* kInnerBackends[] = {"fpga-sim", "cpu-heap",
                                          "exact-sort", "gpu-f16", "cpu-simd"};

void register_sharded_factories() {
  // Scatter-gather variants of every built-in: the same backend
  // behind shard::ShardedIndex (options.shards row-range shards,
  // nnz-balanced boundaries unless options.nnz_balanced_shards is
  // false; the inner factories consume the remaining options).  The
  // shard count is clamped to the row count so tiny collections
  // still construct through the generic bench/test sweeps.
  for (const char* inner : kInnerBackends) {
    index::register_backend(
        std::string("sharded-") + inner,
        [inner](std::shared_ptr<const sparse::Csr> matrix,
                const index::IndexOptions& options)
            -> std::shared_ptr<index::SimilarityIndex> {
          const std::string label = std::string("sharded-") + inner;
          // Warm restart: replay a persisted deployment instead of
          // encoding.  The recorded label must match the requested
          // backend — a deployment saved under a different inner
          // backend must not silently serve as this one.  Checked
          // against the manifest alone, before any image is hashed
          // or rebuilt, so a mismatch fails fast.
          if (!options.deployment_dir.empty()) {
            const std::string saved_label =
                persist::read_manifest(options.deployment_dir).label;
            if (saved_label != label) {
              throw std::runtime_error(
                  label + ": deployment at '" + options.deployment_dir +
                  "' was saved as '" + saved_label +
                  "' — refusing to serve it as a different backend");
            }
            return shard::ShardedIndexBuilder::from_deployment(
                options.deployment_dir, options);
          }
          if (!matrix) {
            throw std::invalid_argument(label + ": null matrix");
          }
          const int shards = static_cast<int>(std::min<std::uint64_t>(
              static_cast<std::uint64_t>(std::max(1, options.shards)),
              std::max<std::uint32_t>(1, matrix->rows())));
          // Replica count clamped like the shard count, so generic
          // sweeps can set it unconditionally.
          return shard::ShardedIndexBuilder()
              .matrix(std::move(matrix))
              .shards(shards)
              .policy(options.nnz_balanced_shards
                          ? shard::ShardPolicy::kNnzBalanced
                          : shard::ShardPolicy::kEvenRows)
              .replicas(std::max(1, options.replicas))
              .inner_backend(inner)
              .inner_options(options)
              .label(label)
              .build();
        });
  }
}

void register_mutable_factories() {
  // Mutable (LSM-shaped) variants: the same sealed scatter-gather
  // tier wrapped in shard::MutableShardedIndex, absorbing
  // insert_row/delete_row into an in-memory delta that is folded
  // back by persist::Compactor.  options.delta_capacity and
  // options.compact_threshold are the tier's knobs.
  for (const char* inner : kInnerBackends) {
    index::register_backend(
        std::string("mutable-sharded-") + inner,
        [inner](std::shared_ptr<const sparse::Csr> matrix,
                const index::IndexOptions& options)
            -> std::shared_ptr<index::SimilarityIndex> {
          const std::string base_label = std::string("sharded-") + inner;
          const std::string label = "mutable-" + base_label;
          shard::MutableConfig config;
          config.delta_capacity = options.delta_capacity;
          config.compact_threshold = options.compact_threshold;
          config.label = label;
          shard::RebuildRecipe recipe;
          recipe.replicas = std::max(1, options.replicas);
          recipe.inner_backend = inner;
          recipe.inner_options = options;
          recipe.inner_options.deployment_dir.clear();
          recipe.inner_options.replicas = 1;
          recipe.label = base_label;
          // Warm restart: adopt a deployment saved under the SEALED
          // base's label — every generation the Compactor writes
          // carries it, so a mutable index resumes from its own
          // images (generation and inherited tombstones come from
          // the v2 manifest; a v1 manifest resumes at generation 0).
          if (!options.deployment_dir.empty()) {
            const persist::DeploymentManifest manifest =
                persist::read_manifest(options.deployment_dir);
            if (manifest.label != base_label) {
              throw std::runtime_error(
                  label + ": deployment at '" + options.deployment_dir +
                  "' was saved as '" + manifest.label +
                  "' — refusing to serve it as a different backend");
            }
            index::IndexOptions warm_options = options;
            warm_options.replicas = recipe.replicas;
            auto base = persist::load_deployment(options.deployment_dir,
                                                 warm_options);
            recipe.shards = static_cast<int>(base->shard_count());
            auto host = reconstruct_base_matrix(*base);
            return std::make_shared<shard::MutableShardedIndex>(
                std::move(base), std::move(host), std::move(recipe),
                std::move(config), manifest.generation,
                manifest.tombstones);
          }
          if (!matrix) {
            throw std::invalid_argument(label + ": null matrix");
          }
          const int shards = static_cast<int>(std::min<std::uint64_t>(
              static_cast<std::uint64_t>(std::max(1, options.shards)),
              std::max<std::uint32_t>(1, matrix->rows())));
          recipe.shards = shards;
          recipe.policy = options.nnz_balanced_shards
                              ? shard::ShardPolicy::kNnzBalanced
                              : shard::ShardPolicy::kEvenRows;
          auto base = shard::ShardedIndexBuilder()
                          .matrix(matrix)
                          .shards(shards)
                          .policy(recipe.policy)
                          .replicas(recipe.replicas)
                          .routing(recipe.routing)
                          .inner_backend(inner)
                          .inner_options(recipe.inner_options)
                          .label(base_label)
                          .build();
          return std::make_shared<shard::MutableShardedIndex>(
              std::move(base), std::move(matrix), std::move(recipe),
              std::move(config));
        });
  }
}

/// Static-init registration: runs once before main(), after the
/// registry's own magic static is reachable (function-local, so
/// always).
const bool registered = [] {
  register_sharded_factories();
  register_mutable_factories();
  return true;
}();

}  // namespace

bool deployment_backends_registered() noexcept { return registered; }

}  // namespace topk::persist
