// Persistent shard deployments: a sharded index saved as versioned
// on-disk images and reloaded without re-running the encoder.
//
// The paper's premise is that encoding a BS-CSR image is far slower
// than streaming it, so a real deployment encodes once and ships bytes
// to HBM at load time.  save_deployment() writes one image file per
// shard of a shard::ShardedIndex — the multi-core BS-CSR streams for
// fpga-sim shards (the bytes an XDMA transfer would replay into HBM),
// a raw little-endian CSR image (sparse::save_binary) for the
// CSR-backed backends — plus a versioned, digest-carrying text
// manifest:
//
//   topk-deployment 2
//   label sharded-fpga-sim
//   generation 3                  (mutable tier's compaction counter)
//   rows 60000
//   cols 1024
//   design fixed 20 8 8 8 0 512   (kind V cores k r enforce_r packet_bits)
//   tombstones 2 17 4242          (count, then the sorted deleted ids)
//   shards 4
//   shard 0 0 15731 fpga-sim fpga shard-0.fpga.img 212992 <sha256 hex>
//   ...
//   end
//
// Version-1 manifests (no generation/tombstones lines) still load,
// with generation = 0 and an empty tombstone set.
//
// load_deployment() verifies every image's SHA-256 digest and shape
// against the manifest before any bytes reach an index, reconstructs
// each inner backend (core::TopKAccelerator::from_parts for fpga-sim;
// the registry for the rest), and returns a ShardedIndex that is
// bit-identical to the one saved — the foundation for replication (a
// replica is just a second load of the same images).  Every corruption
// mode — truncated or bit-flipped image, wrong magic, future manifest
// version, missing shard file, manifest/image shape disagreement —
// throws std::runtime_error naming the offending file; nothing is
// served from a partially valid deployment.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/design.hpp"
#include "core/partitioner.hpp"
#include "index/backends.hpp"
#include "shard/sharded_index.hpp"

namespace topk::persist {

/// Manifest schema version written by save_deployment; newer versions
/// on disk are rejected (forward compatibility is explicit, never
/// silent misparsing).  Version 2 added the monotonically increasing
/// `generation` field (the compaction swap key) and the inherited
/// `tombstones` record; version-1 manifests still load, with
/// generation = 0 and no tombstones.
inline constexpr int kManifestVersion = 2;

/// Manifest filename inside a deployment directory.
inline constexpr const char* kManifestFilename = "deployment.manifest";

/// One shard image as recorded in the manifest.
struct ShardImage {
  core::Partition range;     ///< global row range the shard serves
  std::string backend;       ///< inner registry name, e.g. "fpga-sim"
  std::string format;        ///< "fpga" (BS-CSR core streams) or "csr"
  std::string file;          ///< filename inside the deployment dir
  std::uint64_t bytes = 0;   ///< image file size
  std::string digest;        ///< SHA-256 hex of the image file
};

/// Parsed deployment manifest.
struct DeploymentManifest {
  int version = kManifestVersion;
  std::string label;  ///< the saved index's describe().backend
  /// Sealed-generation counter of the mutable tier (0 = a cold build
  /// or any version-1 manifest; +1 per compaction).  Compaction swaps
  /// key on it: persist::Compactor writes generation g+1 next to the
  /// serving generation g and retires g only after the swap.
  std::uint64_t generation = 0;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  /// Geometry and k-policy of the fpga-sim shards (value kind/width,
  /// cores per shard, per-core k, rows-per-packet budget, packet
  /// width).  Defaulted when the deployment holds no fpga-sim shard.
  core::DesignConfig design;
  /// Sorted row ids deleted as of this generation and folded away as
  /// empty rows — a mutable warm load must keep masking them forever
  /// (empty for version-1 manifests and plain sealed deployments).
  std::vector<std::uint32_t> tombstones;
  std::vector<ShardImage> shards;
};

/// Mutable-tier metadata stamped into a saved deployment.  The default
/// (generation 0, no tombstones) is a plain sealed deployment.
struct DeploymentMeta {
  std::uint64_t generation = 0;
  std::vector<std::uint32_t> tombstones;  ///< sorted, unique, < rows
};

/// Writes `index` as a deployment directory (created if needed): one
/// image per shard plus the manifest.  Supported inner backends are
/// fpga-sim (BS-CSR core streams) and the CSR-backed built-ins
/// (cpu-heap, exact-sort, gpu-f16).  Throws std::invalid_argument for
/// an inner backend without a persistable image (e.g. a third-party
/// registry backend) or malformed meta (unsorted/duplicate/out-of-range
/// tombstones), and std::runtime_error on I/O failure.
void save_deployment(const shard::ShardedIndex& index,
                     const std::filesystem::path& dir,
                     const DeploymentMeta& meta);

/// Plain sealed deployment: generation 0, no tombstones.
void save_deployment(const shard::ShardedIndex& index,
                     const std::filesystem::path& dir);

/// Reads and validates just the manifest (magic, version, field
/// ranges, shard-plan contiguity).  Throws std::runtime_error naming
/// the manifest on any problem.
[[nodiscard]] DeploymentManifest read_manifest(
    const std::filesystem::path& dir);

/// Reconstructs the saved ShardedIndex from `dir` without re-running
/// the encoder.  Every image is digest-verified and shape-checked
/// against the manifest first.  `options` supplies the non-geometric
/// knobs of the inner factories (e.g. the gpu-f16 perf model) and the
/// replica count: options.replicas > 1 loads every shard's image that
/// many times into interchangeable replicas — the digests guarantee
/// the replicas are byte-identical, which is what makes failover
/// serving bit-identical.  The design and shard plan always come from
/// the manifest.  Throws std::runtime_error naming the offending file
/// on any corruption or disagreement.
[[nodiscard]] std::shared_ptr<shard::ShardedIndex> load_deployment(
    const std::filesystem::path& dir, const index::IndexOptions& options = {});

}  // namespace topk::persist
