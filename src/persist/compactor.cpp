#include "persist/compactor.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "persist/deployment.hpp"
#include "util/timer.hpp"

namespace topk::persist {

Compactor::Compactor(std::shared_ptr<shard::MutableShardedIndex> index,
                     std::filesystem::path root)
    : index_(std::move(index)), root_(std::move(root)) {
  if (!index_) {
    throw std::invalid_argument("Compactor: null index");
  }
  if (root_.empty()) {
    throw std::invalid_argument("Compactor: empty deployment root");
  }
}

std::optional<CompactionReport> Compactor::compact() {
  util::WallTimer total;
  auto ticket = index_->begin_compaction();
  if (!ticket) {
    return std::nullopt;
  }
  CompactionReport report;
  report.generation = ticket->generation + 1;
  report.folded_rows = ticket->snapshot.next_id;
  report.folded_mutations =
      static_cast<std::uint64_t>(ticket->snapshot.versions.size());
  report.snapshot_seconds = ticket->snapshot_seconds;
  report.dir = root_ / ("gen-" + std::to_string(report.generation));
  try {
    util::WallTimer stage;
    shard::MutableShardedIndex::FoldedMatrix folded =
        shard::MutableShardedIndex::fold(*ticket);
    report.tombstones = static_cast<std::uint64_t>(folded.retired.size());
    report.fold_seconds = stage.seconds();

    // Cold-rebuild the sealed tier from the original recipe.  The
    // cold build exists only to be persisted: what serves is the
    // digest-verified warm load below, so the swapped-in bytes are
    // exactly the bytes that were verified on disk.
    stage = util::WallTimer();
    const shard::RebuildRecipe& recipe = ticket->recipe;
    const auto folded_matrix =
        std::make_shared<const sparse::Csr>(std::move(folded.matrix));
    const auto cold = shard::ShardedIndexBuilder()
                          .matrix(folded_matrix)
                          .shards(recipe.shards)
                          .policy(recipe.policy)
                          .replicas(1)  // one image per shard suffices
                          .routing(recipe.routing)
                          .inner_backend(recipe.inner_backend)
                          .inner_options(recipe.inner_options)
                          .label(recipe.label)
                          .build();
    report.build_seconds = stage.seconds();

    stage = util::WallTimer();
    DeploymentMeta meta;
    meta.generation = report.generation;
    meta.tombstones = folded.retired;
    save_deployment(*cold, report.dir, meta);
    report.save_seconds = stage.seconds();

    stage = util::WallTimer();
    index::IndexOptions warm_options = recipe.inner_options;
    warm_options.replicas = recipe.replicas;
    warm_options.deployment_dir.clear();
    const auto warm = load_deployment(report.dir, warm_options);
    report.load_seconds = stage.seconds();

    report.swap_seconds = index_->finish_compaction(
        *ticket, warm, folded_matrix, std::move(folded.retired));
  } catch (...) {
    // Fold/build/save/load/swap failed: release the guard so the next
    // compaction can run — the current generation never stopped
    // serving.
    index_->abort_compaction();
    throw;
  }
  report.residual_mutations = index_->delta_stats().mutations_since_seal;
  report.total_seconds = total.seconds();
  {
    util::MutexLock lock(history_mutex_);
    history_.push_back(report);
  }
  return report;
}

std::optional<CompactionReport> Compactor::maybe_compact() {
  const index::DeltaStats stats = index_->delta_stats();
  if (stats.compact_threshold == 0 ||
      stats.mutations_since_seal < stats.compact_threshold) {
    return std::nullopt;
  }
  return compact();
}

std::vector<CompactionReport> Compactor::history() const {
  util::MutexLock lock(history_mutex_);
  return history_;
}

}  // namespace topk::persist
