#include "persist/compactor.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "persist/deployment.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/timer.hpp"

namespace topk::persist {

namespace {

telemetry::Counter& compactions_metric() {
  static telemetry::Counter& c = telemetry::registry().counter(
      "topk_compactions_total", {}, "Completed compaction cycles.");
  return c;
}

telemetry::Gauge& generation_metric() {
  static telemetry::Gauge& g = telemetry::registry().gauge(
      "topk_compaction_generation", {},
      "Sealed generation produced by the most recent compaction.");
  return g;
}

/// One labelled histogram cell per compaction phase — the exposition
/// aggregates them as topk_compaction_phase_seconds{phase="..."}.
telemetry::Histogram& phase_metric(const char* phase) {
  return telemetry::registry().histogram(
      "topk_compaction_phase_seconds",
      telemetry::Histogram::latency_buckets(), {{"phase", phase}},
      "Wall time of one compaction phase in seconds.");
}

/// Spans arrive with their duration already measured by the phase
/// timers, so they are recorded retroactively: start = now - duration.
void record_phase(const char* phase, double seconds) {
  phase_metric(phase).observe(seconds);
  if (!telemetry::tracer().enabled()) {
    return;
  }
  telemetry::TraceSpan span;
  span.name = phase;
  span.category = "compact";
  span.trace_id = telemetry::current_trace_id();
  span.thread_id = telemetry::current_thread_ordinal();
  span.start_seconds = telemetry::now_seconds() - seconds;
  span.duration_seconds = seconds;
  telemetry::tracer().record(std::move(span));
}

}  // namespace

Compactor::Compactor(std::shared_ptr<shard::MutableShardedIndex> index,
                     std::filesystem::path root)
    : index_(std::move(index)), root_(std::move(root)) {
  if (!index_) {
    throw std::invalid_argument("Compactor: null index");
  }
  if (root_.empty()) {
    throw std::invalid_argument("Compactor: empty deployment root");
  }
}

std::optional<CompactionReport> Compactor::compact() {
  util::WallTimer total;
  // A compaction is its own trace: one id groups the snapshot / fold /
  // build / save / load / swap spans next to the queries it overlapped.
  const bool traced = telemetry::tracer().enabled();
  telemetry::TraceContextScope scope(
      traced ? telemetry::tracer().mint_trace_id()
             : telemetry::current_trace_id());
  auto ticket = index_->begin_compaction();
  if (!ticket) {
    return std::nullopt;
  }
  CompactionReport report;
  report.generation = ticket->generation + 1;
  report.folded_rows = ticket->snapshot.next_id;
  report.folded_mutations =
      static_cast<std::uint64_t>(ticket->snapshot.versions.size());
  report.snapshot_seconds = ticket->snapshot_seconds;
  report.dir = root_ / ("gen-" + std::to_string(report.generation));
  record_phase("snapshot", report.snapshot_seconds);
  try {
    util::WallTimer stage;
    shard::MutableShardedIndex::FoldedMatrix folded =
        shard::MutableShardedIndex::fold(*ticket);
    report.tombstones = static_cast<std::uint64_t>(folded.retired.size());
    report.fold_seconds = stage.seconds();
    record_phase("fold", report.fold_seconds);

    // Cold-rebuild the sealed tier from the original recipe.  The
    // cold build exists only to be persisted: what serves is the
    // digest-verified warm load below, so the swapped-in bytes are
    // exactly the bytes that were verified on disk.
    stage = util::WallTimer();
    const shard::RebuildRecipe& recipe = ticket->recipe;
    const auto folded_matrix =
        std::make_shared<const sparse::Csr>(std::move(folded.matrix));
    const auto cold = shard::ShardedIndexBuilder()
                          .matrix(folded_matrix)
                          .shards(recipe.shards)
                          .policy(recipe.policy)
                          .replicas(1)  // one image per shard suffices
                          .routing(recipe.routing)
                          .inner_backend(recipe.inner_backend)
                          .inner_options(recipe.inner_options)
                          .label(recipe.label)
                          .build();
    report.build_seconds = stage.seconds();
    record_phase("build", report.build_seconds);

    stage = util::WallTimer();
    DeploymentMeta meta;
    meta.generation = report.generation;
    meta.tombstones = folded.retired;
    save_deployment(*cold, report.dir, meta);
    report.save_seconds = stage.seconds();
    record_phase("save", report.save_seconds);

    stage = util::WallTimer();
    index::IndexOptions warm_options = recipe.inner_options;
    warm_options.replicas = recipe.replicas;
    warm_options.deployment_dir.clear();
    const auto warm = load_deployment(report.dir, warm_options);
    report.load_seconds = stage.seconds();
    record_phase("load", report.load_seconds);

    report.swap_seconds = index_->finish_compaction(
        *ticket, warm, folded_matrix, std::move(folded.retired));
    record_phase("swap", report.swap_seconds);
  } catch (...) {
    // Fold/build/save/load/swap failed: release the guard so the next
    // compaction can run — the current generation never stopped
    // serving.
    index_->abort_compaction();
    throw;
  }
  report.residual_mutations = index_->delta_stats().mutations_since_seal;
  report.total_seconds = total.seconds();
  compactions_metric().inc();
  generation_metric().set(static_cast<double>(report.generation));
  {
    util::MutexLock lock(history_mutex_);
    history_.push_back(report);
  }
  return report;
}

std::optional<CompactionReport> Compactor::maybe_compact() {
  const index::DeltaStats stats = index_->delta_stats();
  if (stats.compact_threshold == 0 ||
      stats.mutations_since_seal < stats.compact_threshold) {
    return std::nullopt;
  }
  return compact();
}

std::vector<CompactionReport> Compactor::history() const {
  util::MutexLock lock(history_mutex_);
  return history_;
}

}  // namespace topk::persist
