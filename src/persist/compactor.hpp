// Compaction driver of the mutable tier: folds a
// shard::MutableShardedIndex's base + delta into a fresh sealed
// generation OFF the serving path, persists it as a generation-stamped
// deployment image, digest-verifies it by warm-loading it, and
// atomically swaps it in.
//
// The pipeline per compaction (the LSM merge, with the repo's
// deployment images as the SSTable analogue):
//
//   begin_compaction()  claim the single-compactor guard, snapshot
//                       the delta (queries/mutations keep flowing)
//   fold                base + delta -> the logically-equivalent
//                       matrix; deleted ids become empty rows and are
//                       recorded as the next generation's inherited
//                       tombstones
//   build               cold-rebuild the sealed tier from the original
//                       recipe (same shard policy / inner backend /
//                       replicas / routing as generation 0)
//   save                persist::save_deployment into
//                       <root>/gen-<g+1>, manifest v2 stamped with the
//                       generation and the tombstone set
//   load                persist::load_deployment — every image is
//                       SHA-256-verified, and the warm-loaded index
//                       (not the cold build) is what serves, so the
//                       bytes that were verified are the bytes in
//                       production
//   swap                MutableShardedIndex::finish_compaction —
//                       residual mutations (arrived during the fold)
//                       move into the fresh delta; the old generation
//                       retires once in-flight queries drain their
//                       shared_ptr copies
//
// Serving traffic is never blocked for the duration: the only
// exclusive sections are the guard claim and the pointer swap, both
// reported per compaction in CompactionReport (bench_mutability's
// pause percentiles).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "shard/mutable_sharded_index.hpp"
#include "util/sync.hpp"

namespace topk::persist {

/// What one compaction did and what it cost.
struct CompactionReport {
  std::uint64_t generation = 0;        ///< the generation swapped IN
  std::uint32_t folded_rows = 0;       ///< id space of the new base
  std::uint64_t folded_mutations = 0;  ///< mutations sealed by this fold
  /// Mutations that arrived during the fold and moved into the fresh
  /// delta (the next compaction's input).
  std::uint64_t residual_mutations = 0;
  std::uint64_t tombstones = 0;  ///< inherited ids masked by the new base
  double snapshot_seconds = 0.0;  ///< delta snapshot copy
  double fold_seconds = 0.0;      ///< matrix fold
  double build_seconds = 0.0;     ///< cold re-encode of the sealed tier
  double save_seconds = 0.0;      ///< deployment image write + digests
  double load_seconds = 0.0;      ///< digest-verified warm load
  double swap_seconds = 0.0;      ///< the exclusive swap section
  double total_seconds = 0.0;
  std::filesystem::path dir;  ///< the gen-<g> deployment directory
};

/// Drives compactions of one mutable index into generation-stamped
/// deployment directories under `root` (<root>/gen-1, <root>/gen-2,
/// ...).  Thread-safe; at most one compaction runs at a time (a second
/// concurrent call throws std::logic_error from begin_compaction).
class Compactor {
 public:
  /// Throws std::invalid_argument for a null index or an empty root.
  Compactor(std::shared_ptr<shard::MutableShardedIndex> index,
            std::filesystem::path root);

  /// Runs one full compaction.  Returns std::nullopt when the delta
  /// has absorbed no mutation since the last seal (the empty-delta
  /// no-op — nothing is written, nothing swaps).  On any failure after
  /// the guard is claimed, the guard is released, the current
  /// generation keeps serving, and the error is rethrown.
  std::optional<CompactionReport> compact();

  /// compact() iff the index's compact_threshold is set and the delta
  /// has absorbed at least that many mutations since the last seal.
  std::optional<CompactionReport> maybe_compact();

  /// Reports of every compaction this driver has completed, oldest
  /// first.
  [[nodiscard]] std::vector<CompactionReport> history() const;

  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }

 private:
  std::shared_ptr<shard::MutableShardedIndex> index_;
  std::filesystem::path root_;
  mutable util::Mutex history_mutex_;
  std::vector<CompactionReport> history_ TOPK_GUARDED_BY(history_mutex_);
};

}  // namespace topk::persist
