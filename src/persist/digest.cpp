#include "persist/digest.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/cpu_features.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define TOPK_SHA_NI_DISPATCH 1
#include <immintrin.h>
#endif

namespace topk::persist {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

/// Portable compression loop (FIPS 180-4 reference arithmetic).
void sha256_blocks_scalar(std::array<std::uint32_t, 8>& state,
                          const std::uint8_t* block, std::size_t blocks) {
  for (; blocks > 0; --blocks, block += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
             (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^
                               std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^
                               std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 =
          std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
      const std::uint32_t s0 =
          std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#ifdef TOPK_SHA_NI_DISPATCH

/// x86 SHA-NI compression loop (the standard Intel round schedule) —
/// digesting a deployment at load time must stay an order of magnitude
/// cheaper than the encoder the warm path skips.  Selected at runtime
/// only when the CPU reports the sha/sse4.1 features; CI pins both
/// paths to the FIPS vectors (the fallback via TOPK_NO_SHA_NI, since
/// the cached probe means one process only ever runs one path).
__attribute__((target("sha,sse4.1,ssse3"))) void sha256_blocks_shani(
    std::array<std::uint32_t, 8>& state, const std::uint8_t* data,
    std::size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f'08090a0bLL, 0x04050607'00010203LL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);          // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);    // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  for (; blocks > 0; --blocks, data += 64) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msg0, msg1, msg2, msg3;

    // Rounds 0-3
    msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuffle);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0xE9B5DBA5'B5C0FBCFULL, 0x71374491'428A2F98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuffle);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0xAB1C5ED5'923F82A4ULL, 0x59F111F1'3956C25BULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuffle);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x550C7DC3'243185BEULL, 0x12835B01'D807AA98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuffle);
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC19BF174'9BDC06A7ULL, 0x80DEB1FE'72BE5D74ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x240CA1CC'0FC19DC6ULL, 0xEFBE4786'E49B69C1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x76F988DA'5CB0A9DCULL, 0x4A7484AA'2DE92C6FULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xBF597FC7'B00327C8ULL, 0xA831C66D'983E5152ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x14292967'06CA6351ULL, 0xD5A79147'C6E00BF3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x53380D13'4D2C6DFCULL, 0x2E1B2138'27B70A85ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x92722C85'81C2C92EULL, 0x766A0ABB'650A7354ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xC76C51A3'C24B8B70ULL, 0xA81A664B'A2BFE8A1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x106AA070'F40E3585ULL, 0xD6990624'D192E819ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x34B0BCB5'2748774CULL, 0x1E376C08'19A4C116ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x682E6FF3'5B9CCA4FULL, 0x4ED8AA4A'391C0CB3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x8CC70208'84C87814ULL, 0x78A5636F'748F82EEULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC67178F2'BEF9A3F7ULL, 0xA4506CEB'90BEFFFAULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);    // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // TOPK_SHA_NI_DISPATCH

void sha256_blocks(std::array<std::uint32_t, 8>& state,
                   const std::uint8_t* block, std::size_t blocks) {
#ifdef TOPK_SHA_NI_DISPATCH
  // The shared probe honours TOPK_NO_SHA_NI, which forces the portable
  // path (so the fallback stays testable on hardware that would
  // otherwise always dispatch to SHA-NI).
  if (util::cpu_features().sha_ni) {
    sha256_blocks_shani(state, block, blocks);
    return;
  }
#endif
  sha256_blocks_scalar(state, block, blocks);
}

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::process_block(const std::uint8_t* block) {
  sha256_blocks(state_, block, 1);
}

void Sha256::update(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_bytes_ += bytes;
  if (buffered_ > 0) {
    const std::size_t take = std::min(bytes, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, p, take);
    buffered_ += take;
    p += take;
    bytes -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  if (bytes >= buffer_.size()) {
    const std::size_t whole_blocks = bytes / buffer_.size();
    sha256_blocks(state_, p, whole_blocks);
    p += whole_blocks * buffer_.size();
    bytes -= whole_blocks * buffer_.size();
  }
  if (bytes > 0) {
    std::memcpy(buffer_.data(), p, bytes);
    buffered_ = bytes;
  }
}

std::array<std::uint8_t, 32> Sha256::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(&zero, 1);
  }
  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - i * 8));
  }
  // Bypass update(): the length must not count towards itself.
  std::memcpy(buffer_.data() + 56, length_bytes, 8);
  process_block(buffer_.data());
  buffered_ = 0;

  std::array<std::uint8_t, 32> digest;
  for (int i = 0; i < 8; ++i) {
    digest[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

namespace {

std::string to_hex(const std::array<std::uint8_t, 32>& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string hex(64, '0');
  for (std::size_t i = 0; i < digest.size(); ++i) {
    hex[i * 2] = kHex[digest[i] >> 4];
    hex[i * 2 + 1] = kHex[digest[i] & 0xF];
  }
  return hex;
}

}  // namespace

std::string sha256_hex(std::span<const std::uint8_t> bytes) {
  Sha256 hasher;
  hasher.update(bytes.data(), bytes.size());
  return to_hex(hasher.finish());
}

std::string sha256_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("sha256_file: cannot open " + path.string());
  }
  Sha256 hasher;
  char chunk[1 << 16];
  while (is) {
    is.read(chunk, sizeof(chunk));
    hasher.update(chunk, static_cast<std::size_t>(is.gcount()));
  }
  if (is.bad()) {
    throw std::runtime_error("sha256_file: read failure on " + path.string());
  }
  return to_hex(hasher.finish());
}

}  // namespace topk::persist
