// See register_backends.cpp: the durability layer seeds the
// "sharded-<inner>" and "mutable-sharded-<inner>" backends into the
// index registry at static-initialization time.
#pragma once

namespace topk::persist {

/// Returns true once the deployment-aware backends are registered.
/// Registration happens during static initialization of the persist
/// module; this accessor exists so a binary that wants to assert the
/// registrar TU was linked (or force-reference it from a context where
/// dead-stripping is a concern) has a named symbol to call.
bool deployment_backends_registered() noexcept;

}  // namespace topk::persist
