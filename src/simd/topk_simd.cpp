#include "simd/topk_simd.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/cpu_features.hpp"
#include "util/thread_pool.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define TOPK_SIMD_DISPATCH 1
#include <immintrin.h>
#endif

namespace topk::simd {

namespace {

/// Screen positions [pos_begin, pos_end), writing the f32 score of
/// position p to scores[p - pos_begin].  xpad is the query padded with
/// zeros to a kBlockCols multiple, so full-width block loads never run
/// past the vector.  Under the gather strategy both bounds are
/// multiples of kBlockCols (whole groups).  The scan's rounding error
/// is covered by the layout's precomputed screen_bound() (times
/// ||x||_2), so the kernels accumulate nothing but the score itself.
using ScanFn = void (*)(const BlockedCsr&, const float*, std::uint32_t,
                        std::uint32_t, float*);

// Positions screened per scan call: the score staging buffer stays
// L1 resident and the filter loop runs on warm results.  A multiple of
// kBlockCols so gather chunks hold whole groups.
constexpr std::uint32_t kChunkRows = 1024;

// ------------------------------------------------------- scalar kernels

void scan_blocked_scalar(const BlockedCsr& layout, const float* xpad,
                         std::uint32_t pos_begin, std::uint32_t pos_end,
                         float* scores) {
  const std::uint64_t* bp = layout.block_ptr().data();
  const std::uint32_t* bid = layout.block_id().data();
  const float* vals = layout.block_vals().data();
  for (std::uint32_t r = pos_begin; r < pos_end; ++r) {
    float score = 0.0f;
    for (std::uint64_t b = bp[r]; b < bp[r + 1]; ++b) {
      const float* v = vals + static_cast<std::size_t>(b) * kBlockCols;
      const float* xb = xpad + static_cast<std::size_t>(bid[b]) * kBlockCols;
      for (std::uint32_t j = 0; j < kBlockCols; ++j) {
        score += v[j] * xb[j];
      }
    }
    scores[r - pos_begin] = score;
  }
}

void scan_gather_scalar(const BlockedCsr& layout, const float* xpad,
                        std::uint32_t pos_begin, std::uint32_t pos_end,
                        float* scores) {
  const std::uint64_t* off = layout.group_off().data();
  const std::uint32_t* c32 = layout.group_cols().data();
  const std::uint16_t* c16 =
      layout.narrow_cols() ? layout.group_cols16().data() : nullptr;
  const float* vals = layout.group_vals().data();
  for (std::uint32_t p = pos_begin; p < pos_end; p += kBlockCols) {
    const std::uint32_t g = p / kBlockCols;
    const std::uint64_t terms = off[g + 1] - off[g];
    const std::size_t base = static_cast<std::size_t>(off[g]) * kBlockCols;
    const float* v = vals + base;
    float score[kBlockCols] = {};
    for (std::uint64_t t = 0; t < terms; ++t) {
      const std::size_t slot = static_cast<std::size_t>(t) * kBlockCols;
      for (std::uint32_t lane = 0; lane < kBlockCols; ++lane) {
        const std::uint32_t col = c16 != nullptr ? c16[base + slot + lane]
                                                 : c32[base + slot + lane];
        score[lane] += v[slot + lane] * xpad[col];
      }
    }
    for (std::uint32_t lane = 0; lane < kBlockCols; ++lane) {
      scores[p - pos_begin + lane] = score[lane];
    }
  }
}

#ifdef TOPK_SIMD_DISPATCH

// --------------------------------------------------------- AVX2 kernels

__attribute__((target("avx2"))) inline float hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

__attribute__((target("avx2,fma"))) void scan_blocked_avx2(
    const BlockedCsr& layout, const float* xpad, std::uint32_t pos_begin,
    std::uint32_t pos_end, float* scores) {
  const std::uint64_t* bp = layout.block_ptr().data();
  const std::uint32_t* bid = layout.block_id().data();
  const float* vals = layout.block_vals().data();
  for (std::uint32_t r = pos_begin; r < pos_end; ++r) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    for (std::uint64_t b = bp[r]; b < bp[r + 1]; ++b) {
      const float* v = vals + static_cast<std::size_t>(b) * kBlockCols;
      const float* xb = xpad + static_cast<std::size_t>(bid[b]) * kBlockCols;
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(v), _mm256_loadu_ps(xb), acc0);
      acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(v + 8),
                             _mm256_loadu_ps(xb + 8), acc1);
    }
    scores[r - pos_begin] = hsum256(_mm256_add_ps(acc0, acc1));
  }
}

/// Loads 8 column indices at flat slot `slot`, widening from 16-bit
/// when the narrow array is in use (c16 non-null).
__attribute__((target("avx2"))) inline __m256i load_idx8(
    const std::uint32_t* c32, const std::uint16_t* c16, std::size_t slot) {
  if (c16 != nullptr) {
    return _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c16 + slot)));
  }
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c32 + slot));
}

__attribute__((target("avx2,fma"))) void scan_gather_avx2(
    const BlockedCsr& layout, const float* xpad, std::uint32_t pos_begin,
    std::uint32_t pos_end, float* scores) {
  const std::uint64_t* off = layout.group_off().data();
  const std::uint32_t* c32 = layout.group_cols().data();
  const std::uint16_t* c16 =
      layout.narrow_cols() ? layout.group_cols16().data() : nullptr;
  const float* vals = layout.group_vals().data();
  for (std::uint32_t p = pos_begin; p < pos_end; p += kBlockCols) {
    const std::uint32_t g = p / kBlockCols;
    const std::uint64_t terms = off[g + 1] - off[g];
    const std::size_t base = static_cast<std::size_t>(off[g]) * kBlockCols;
    const float* v = vals + base;
    // One lane per row: accumulate the group's 16 rows in two ymm
    // halves and store them straight out — no horizontal reduction.
    __m256 acc_lo = _mm256_setzero_ps();
    __m256 acc_hi = _mm256_setzero_ps();
    for (std::uint64_t t = 0; t < terms; ++t) {
      const std::size_t slot = static_cast<std::size_t>(t) * kBlockCols;
      const __m256i idx_lo = load_idx8(c32, c16, base + slot);
      const __m256i idx_hi = load_idx8(c32, c16, base + slot + 8);
      const __m256 xv_lo = _mm256_i32gather_ps(xpad, idx_lo, 4);
      const __m256 xv_hi = _mm256_i32gather_ps(xpad, idx_hi, 4);
      acc_lo = _mm256_fmadd_ps(_mm256_loadu_ps(v + slot), xv_lo, acc_lo);
      acc_hi = _mm256_fmadd_ps(_mm256_loadu_ps(v + slot + 8), xv_hi, acc_hi);
    }
    _mm256_storeu_ps(scores + (p - pos_begin), acc_lo);
    _mm256_storeu_ps(scores + (p - pos_begin) + 8, acc_hi);
  }
}

// ------------------------------------------------------ AVX-512 kernels

// GCC 12's unmasked _mm512_i32gather_ps / _mm512_reduce_add_ps expand
// through _mm512_undefined_ps(), which trips -Wmaybe-uninitialized at
// the system-header line; the lanes are fully overwritten, so silence
// it for these kernels only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

__attribute__((target("avx512f"))) void scan_blocked_avx512(
    const BlockedCsr& layout, const float* xpad, std::uint32_t pos_begin,
    std::uint32_t pos_end, float* scores) {
  const std::uint64_t* bp = layout.block_ptr().data();
  const std::uint32_t* bid = layout.block_id().data();
  const float* vals = layout.block_vals().data();
  for (std::uint32_t r = pos_begin; r < pos_end; ++r) {
    // One 16-lane register per block; two independent accumulators
    // hide the FMA latency across even/odd blocks.
    __m512 acc_a = _mm512_setzero_ps();
    __m512 acc_b = _mm512_setzero_ps();
    const std::uint64_t end = bp[r + 1];
    std::uint64_t b = bp[r];
    for (; b + 1 < end; b += 2) {
      const __m512 v0 =
          _mm512_loadu_ps(vals + static_cast<std::size_t>(b) * kBlockCols);
      const __m512 x0 = _mm512_loadu_ps(
          xpad + static_cast<std::size_t>(bid[b]) * kBlockCols);
      const __m512 v1 = _mm512_loadu_ps(
          vals + static_cast<std::size_t>(b + 1) * kBlockCols);
      const __m512 x1 = _mm512_loadu_ps(
          xpad + static_cast<std::size_t>(bid[b + 1]) * kBlockCols);
      acc_a = _mm512_fmadd_ps(v0, x0, acc_a);
      acc_b = _mm512_fmadd_ps(v1, x1, acc_b);
    }
    if (b < end) {
      const __m512 v0 =
          _mm512_loadu_ps(vals + static_cast<std::size_t>(b) * kBlockCols);
      const __m512 x0 = _mm512_loadu_ps(
          xpad + static_cast<std::size_t>(bid[b]) * kBlockCols);
      acc_a = _mm512_fmadd_ps(v0, x0, acc_a);
    }
    scores[r - pos_begin] = _mm512_reduce_add_ps(_mm512_add_ps(acc_a, acc_b));
  }
}

/// Loads 16 column indices at flat slot `slot`, widening from 16-bit
/// when the narrow array is in use (c16 non-null).
__attribute__((target("avx512f"))) inline __m512i load_idx16(
    const std::uint32_t* c32, const std::uint16_t* c16, std::size_t slot) {
  if (c16 != nullptr) {
    return _mm512_cvtepu16_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c16 + slot)));
  }
  return _mm512_loadu_si512(static_cast<const void*>(c32 + slot));
}

__attribute__((target("avx512f"))) void scan_gather_avx512(
    const BlockedCsr& layout, const float* xpad, std::uint32_t pos_begin,
    std::uint32_t pos_end, float* scores) {
  const std::uint64_t* off = layout.group_off().data();
  const std::uint32_t* c32 = layout.group_cols().data();
  const std::uint16_t* c16 =
      layout.narrow_cols() ? layout.group_cols16().data() : nullptr;
  const float* vals = layout.group_vals().data();
  for (std::uint32_t p = pos_begin; p < pos_end; p += kBlockCols) {
    const std::uint32_t g = p / kBlockCols;
    const std::uint64_t terms = off[g + 1] - off[g];
    const std::size_t base = static_cast<std::size_t>(off[g]) * kBlockCols;
    const float* v = vals + base;
    // One lane per row: the group's 16 rows finish in one register —
    // no horizontal reduction.  Two accumulators over even/odd terms
    // hide the FMA latency behind the gathers.
    __m512 acc_a = _mm512_setzero_ps();
    __m512 acc_b = _mm512_setzero_ps();
    std::uint64_t t = 0;
    for (; t + 1 < terms; t += 2) {
      const std::size_t slot = static_cast<std::size_t>(t) * kBlockCols;
      const __m512i idx0 = load_idx16(c32, c16, base + slot);
      const __m512i idx1 = load_idx16(c32, c16, base + slot + kBlockCols);
      const __m512 xv0 = _mm512_i32gather_ps(idx0, xpad, 4);
      const __m512 xv1 = _mm512_i32gather_ps(idx1, xpad, 4);
      acc_a = _mm512_fmadd_ps(_mm512_loadu_ps(v + slot), xv0, acc_a);
      acc_b = _mm512_fmadd_ps(_mm512_loadu_ps(v + slot + kBlockCols), xv1,
                              acc_b);
    }
    if (t < terms) {
      const std::size_t slot = static_cast<std::size_t>(t) * kBlockCols;
      const __m512i idx = load_idx16(c32, c16, base + slot);
      const __m512 xv = _mm512_i32gather_ps(idx, xpad, 4);
      acc_a = _mm512_fmadd_ps(_mm512_loadu_ps(v + slot), xv, acc_a);
    }
    _mm512_storeu_ps(scores + (p - pos_begin),
                     _mm512_add_ps(acc_a, acc_b));
  }
}

#pragma GCC diagnostic pop

#endif  // TOPK_SIMD_DISPATCH

ScanFn select_scan(const BlockedCsr& layout, IsaLevel level) {
  const bool blocked = layout.strategy() == Strategy::kBlocked;
#ifdef TOPK_SIMD_DISPATCH
  switch (level) {
    case IsaLevel::kAvx512:
      return blocked ? scan_blocked_avx512 : scan_gather_avx512;
    case IsaLevel::kAvx2:
      return blocked ? scan_blocked_avx2 : scan_gather_avx2;
    case IsaLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return blocked ? scan_blocked_scalar : scan_gather_scalar;
}

// ---------------------------------------------------------- driver code

/// Min-heap on the canonical order (front sorts last), as in the
/// scalar baseline: the lower row index survives ties.
struct HeapLess {
  bool operator()(const core::TopKEntry& a, const core::TopKEntry& b) const {
    return core::topk_entry_before(a, b);
  }
};

void heap_insert(std::vector<core::TopKEntry>& heap, std::size_t k,
                 const core::TopKEntry& entry) {
  const HeapLess less;
  if (heap.size() < k) {
    heap.push_back(entry);
    std::push_heap(heap.begin(), heap.end(), less);
  } else if (core::topk_entry_before(entry, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), less);
    heap.back() = entry;
    std::push_heap(heap.begin(), heap.end(), less);
  }
}

struct RangeOutput {
  std::vector<core::TopKEntry> heap;
  std::uint64_t rescored = 0;
};

/// One screened candidate: the row and its score upper bound, kept so
/// the rescore pass can re-filter against the *final* threshold (the
/// running threshold is weak for the first rows of a range).
struct Candidate {
  std::uint32_t row = 0;
  float upper = 0.0f;
};

void exact_scan_range(const BlockedCsr& layout, std::span<const float> x,
                      const float* xpad, float x_norm, int top_k, ScanFn scan,
                      std::uint32_t pos_begin, std::uint32_t pos_end,
                      RangeOutput& out) {
  const sparse::Csr& csr = layout.source();
  const float* bounds = layout.screen_bound().data();
  const std::size_t k = static_cast<std::size_t>(top_k);
  const float neg_inf = -std::numeric_limits<float>::infinity();
  std::vector<float> scores(kChunkRows);
  // Min-heap of the k largest score lower bounds seen so far; its
  // front is the screening threshold.
  std::vector<float> lower_heap;
  lower_heap.reserve(k);
  std::vector<Candidate> candidates;
  for (std::uint32_t chunk = pos_begin; chunk < pos_end;
       chunk += kChunkRows) {
    const std::uint32_t chunk_end = std::min(pos_end, chunk + kChunkRows);
    scan(layout, xpad, chunk, chunk_end, scores.data());
    for (std::uint32_t p = chunk; p < chunk_end; ++p) {
      const std::uint32_t row = layout.position_row(p);
      if (row == kInvalidRow) {
        continue;  // padding lane of the final gather group
      }
      const std::uint32_t i = p - chunk;
      // screen_bound() bakes in everything but the query norm (see
      // blocked_csr.hpp); its >= 4x slack covers this f32 product and
      // the f32 bound arithmetic below.
      const float margin = bounds[p] * x_norm;
      const float upper = scores[i] + margin;
      const float lower = scores[i] - margin;
      const float threshold =
          lower_heap.size() == k ? lower_heap.front() : neg_inf;
      // Negated test so a non-finite upper (overflowed or non-finite
      // data) is always a candidate — the rescore resolves it exactly.
      if (!(upper < threshold)) {
        candidates.push_back(Candidate{row, upper});
      }
      if (std::isfinite(lower)) {
        if (lower_heap.size() < k) {
          lower_heap.push_back(lower);
          std::push_heap(lower_heap.begin(), lower_heap.end(),
                         std::greater<>());
        } else if (lower > lower_heap.front()) {
          std::pop_heap(lower_heap.begin(), lower_heap.end(),
                        std::greater<>());
          lower_heap.back() = lower;
          std::push_heap(lower_heap.begin(), lower_heap.end(),
                         std::greater<>());
        }
      }
    }
  }
  // Re-filter against the final threshold before paying for row_dot:
  // the first k rows of the range always passed the (then-empty)
  // running threshold, but most fail the final one.  Still sound: the
  // k-th largest lower bound underestimates the k-th exact score, so a
  // true top-k row's upper bound can never fall below it.
  const float final_threshold =
      lower_heap.size() == k ? lower_heap.front() : neg_inf;
  out.heap.reserve(k);
  for (const Candidate& candidate : candidates) {
    if (candidate.upper < final_threshold) {
      continue;
    }
    ++out.rescored;
    heap_insert(out.heap, k,
                core::TopKEntry{candidate.row,
                                csr.row_dot(candidate.row, x)});
  }
}

void screen_scan_range(const BlockedCsr& layout, const float* xpad,
                       int top_k, ScanFn scan, std::uint32_t pos_begin,
                       std::uint32_t pos_end, RangeOutput& out) {
  const std::size_t k = static_cast<std::size_t>(top_k);
  std::vector<float> scores(kChunkRows);
  out.heap.reserve(k);
  for (std::uint32_t chunk = pos_begin; chunk < pos_end;
       chunk += kChunkRows) {
    const std::uint32_t chunk_end = std::min(pos_end, chunk + kChunkRows);
    scan(layout, xpad, chunk, chunk_end, scores.data());
    for (std::uint32_t p = chunk; p < chunk_end; ++p) {
      const std::uint32_t row = layout.position_row(p);
      if (row == kInvalidRow) {
        continue;
      }
      heap_insert(out.heap, k,
                  core::TopKEntry{
                      row, static_cast<double>(scores[p - chunk])});
    }
  }
}

int resolve_threads(int threads, std::uint32_t rows) {
  if (threads < 0) {
    throw std::invalid_argument("simd::topk_spmv: negative thread count");
  }
  if (threads == 0) {
    threads = util::default_thread_count();
  }
  // Clamped in uint32 space (see the cpu_topk_spmv regression: a
  // uint32 row count cast to int first goes negative for >= 2^31).
  return static_cast<int>(
      std::min<std::uint32_t>(static_cast<std::uint32_t>(threads),
                              std::max<std::uint32_t>(1, rows)));
}

IsaLevel resolve_level(const std::optional<IsaLevel>& forced) {
  if (!forced.has_value()) {
    return dispatch_level();
  }
  const std::vector<IsaLevel> levels = available_levels();
  if (std::find(levels.begin(), levels.end(), *forced) == levels.end()) {
    throw std::invalid_argument(
        std::string("simd::topk_spmv: ISA level '") + to_string(*forced) +
        "' is not available on this host");
  }
  return *forced;
}

std::vector<float> pad_query(std::span<const float> x) {
  const std::size_t padded =
      (x.size() + kBlockCols - 1) / kBlockCols * kBlockCols;
  std::vector<float> xpad(padded, 0.0f);
  std::copy(x.begin(), x.end(), xpad.begin());
  return xpad;
}

std::vector<core::TopKEntry> run_query(const BlockedCsr& layout,
                                       std::span<const float> x, int top_k,
                                       const SimdQueryOptions& options,
                                       SimdKernelStats* stats, bool exact) {
  if (!layout.shared_source()) {
    throw std::invalid_argument("simd::topk_spmv: empty layout");
  }
  if (x.size() != layout.cols()) {
    throw std::invalid_argument("simd::topk_spmv: vector size mismatch");
  }
  if (top_k <= 0) {
    throw std::invalid_argument("simd::topk_spmv: top_k must be positive");
  }
  if (exact && layout.precision() != ScreenPrecision::kFloat32) {
    throw std::invalid_argument(
        "simd::topk_spmv: exact query needs a float32 screen layout (the "
        "binary16 screen is not covered by the rescore margins)");
  }
  const IsaLevel level = resolve_level(options.force_level);
  const int threads = resolve_threads(options.threads, layout.rows());
  const ScanFn scan = select_scan(layout, level);
  const std::vector<float> xpad = pad_query(x);
  // The query-side factor of the screening margin (see screen_bound()).
  double x_norm_sq = 0.0;
  for (const float value : x) {
    x_norm_sq += static_cast<double>(value) * static_cast<double>(value);
  }
  const float x_norm = static_cast<float>(std::sqrt(x_norm_sq));
  const std::uint32_t positions = layout.position_count();
  // Thread ranges in whole kBlockCols units so gather groups never
  // split across threads (the last unit may be partial under kBlocked).
  const std::uint32_t units = (positions + kBlockCols - 1) / kBlockCols;

  std::vector<RangeOutput> outputs(static_cast<std::size_t>(threads));
  const auto scan_range = [&](std::size_t t) {
    const std::uint32_t begin = std::min(
        positions,
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(units) * t /
                                   static_cast<std::uint64_t>(threads)) *
            kBlockCols);
    const std::uint32_t end = std::min(
        positions,
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(units) *
                                   (t + 1) /
                                   static_cast<std::uint64_t>(threads)) *
            kBlockCols);
    if (exact) {
      exact_scan_range(layout, x, xpad.data(), x_norm, top_k, scan, begin,
                       end, outputs[t]);
    } else {
      screen_scan_range(layout, xpad.data(), top_k, scan, begin, end,
                        outputs[t]);
    }
  };
  if (threads == 1) {
    scan_range(0);
  } else {
    // Static position ranges on the shared persistent pool, each
    // writing only its own output slot — deterministic, like the
    // scalar baseline.
    util::ThreadPool& pool = util::shared_pool();
    pool.ensure_workers(threads - 1);
    pool.parallel_for(static_cast<std::size_t>(threads), threads, scan_range);
  }

  std::vector<core::TopKEntry> merged;
  std::uint64_t rescored = 0;
  for (const RangeOutput& output : outputs) {
    merged.insert(merged.end(), output.heap.begin(), output.heap.end());
    rescored += output.rescored;
  }
  std::sort(merged.begin(), merged.end(), core::TopKEntryOrder{});
  if (merged.size() > static_cast<std::size_t>(top_k)) {
    merged.resize(static_cast<std::size_t>(top_k));
  }
  if (stats != nullptr) {
    stats->level = level;
    stats->rows_screened = layout.rows();
    stats->rows_rescored = rescored;
  }
  return merged;
}

}  // namespace

const char* to_string(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kAvx512:
      return "avx512";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kScalar:
      break;
  }
  return "scalar";
}

IsaLevel dispatch_level() noexcept {
  const util::CpuFeatures& features = util::cpu_features();
  if (features.avx512) {
    return IsaLevel::kAvx512;
  }
  if (features.avx2) {
    return IsaLevel::kAvx2;
  }
  return IsaLevel::kScalar;
}

std::vector<IsaLevel> available_levels() {
  std::vector<IsaLevel> levels{IsaLevel::kScalar};
  const util::CpuFeatures& features = util::cpu_features();
  if (features.avx2) {
    levels.push_back(IsaLevel::kAvx2);
  }
  if (features.avx512) {
    levels.push_back(IsaLevel::kAvx512);
  }
  return levels;
}

std::vector<core::TopKEntry> topk_spmv_exact(const BlockedCsr& layout,
                                             std::span<const float> x,
                                             int top_k,
                                             const SimdQueryOptions& options,
                                             SimdKernelStats* stats) {
  return run_query(layout, x, top_k, options, stats, /*exact=*/true);
}

std::vector<core::TopKEntry> topk_spmv_screen(const BlockedCsr& layout,
                                              std::span<const float> x,
                                              int top_k,
                                              const SimdQueryOptions& options,
                                              SimdKernelStats* stats) {
  return run_query(layout, x, top_k, options, stats, /*exact=*/false);
}

}  // namespace topk::simd
