// Vectorized Top-K SpMV with runtime ISA dispatch.
//
// Direct vectorization of the exact kernel is a dead end: Csr::row_dot
// accumulates in double, *sequentially*, and every exact backend is
// bit-compared against it, so any reassociated (vector) summation
// changes results.  Instead the kernel runs two phases:
//
//   1. SCREEN - a wide f32 scan (AVX-512 / AVX2 / scalar, chosen at
//      runtime via util::cpu_features) computes, per row, the f32
//      score s.  Standard rounding analysis bounds the screen's total
//      error by gamma_n * sum|v_i * x_i| with gamma_n ~ n * 2^-24 for
//      n accumulated terms, and Cauchy-Schwarz caps that sum by
//      ||row||_2 * ||x||_2 - so the margin (n + 64) * 2^-22 *
//      ||row||_2 * ||x||_2 is a >= 4x overestimate whose row factor
//      the layout precomputes (BlockedCsr::screen_bound()), leaving
//      one multiply per row at query time, and [s - margin,
//      s + margin] always brackets the exact double dot product.
//   2. RESCORE - rows whose upper bound reaches the running k-th
//      largest lower bound are rescored with Csr::row_dot itself.
//      The k-th lower bound only underestimates the k-th exact score,
//      so every true top-k row is rescored; the final heap therefore
//      contains exact doubles and is bit-identical to cpu-heap /
//      exact-sort by construction - independent of ISA, block layout,
//      and thread count (per-thread ranges rescore conservatively
//      more, never less).
//
// Lane-level reassociation only changes *which* rows get rescored
// (all margins are sound), never the returned entries.  On separable
// score distributions the rescore touches O(k) rows and the query is
// dominated by the f32 scan - the >= 2x single-thread speedup over
// cpu-heap that bench/bench_simd.cpp gates.
//
// The screen-only entry point serves the approximate cpu-simd-f16
// backend: values pre-rounded through binary16 (ScreenPrecision::
// kHalf), screen scores returned directly, recall-floor gated in the
// tests like gpu-f16.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/topk_spmv.hpp"
#include "simd/blocked_csr.hpp"

namespace topk::simd {

/// Kernel implementations in dispatch order.
enum class IsaLevel { kScalar, kAvx2, kAvx512 };

[[nodiscard]] const char* to_string(IsaLevel level) noexcept;

/// The widest level this process dispatches to: the cached
/// util::cpu_features probe, so TOPK_NO_AVX / TOPK_NO_AVX512 force the
/// narrower paths (mirroring TOPK_NO_SHA_NI for the digest kernel).
[[nodiscard]] IsaLevel dispatch_level() noexcept;

/// Every level the host can run, narrowest first (kScalar always).
/// Tests sweep these through SimdQueryOptions::force_level so one
/// process exercises each compiled-in path against the same data.
[[nodiscard]] std::vector<IsaLevel> available_levels();

struct SimdQueryOptions {
  /// Intra-query fan-out over row ranges on the shared pool
  /// (0 = hardware concurrency, clamped to the row count).
  int threads = 1;
  /// Pin the kernel to one level instead of dispatch_level().  Throws
  /// std::invalid_argument when the host cannot run it.
  std::optional<IsaLevel> force_level;
};

/// Counters from one kernel invocation.
struct SimdKernelStats {
  IsaLevel level = IsaLevel::kScalar;  ///< level that actually ran
  std::uint64_t rows_screened = 0;
  /// Exact path only: rows whose screen interval overlapped the
  /// running k-th lower bound and were rescored via Csr::row_dot.
  std::uint64_t rows_rescored = 0;
};

/// Exact Top-K (screen + rescore; see header comment).  Requires a
/// ScreenPrecision::kFloat32 layout - a kHalf screen's rounding is not
/// covered by the margin analysis, so mixing the modes throws
/// std::invalid_argument.  Also throws on shape mismatch, non-positive
/// top_k, or negative threads.
[[nodiscard]] std::vector<core::TopKEntry> topk_spmv_exact(
    const BlockedCsr& layout, std::span<const float> x, int top_k,
    const SimdQueryOptions& options = {}, SimdKernelStats* stats = nullptr);

/// Approximate Top-K: the f32 screen scores ARE the results (no
/// margins, no rescore), ranked with the canonical tie-break.  Pairs
/// with a ScreenPrecision::kHalf layout for the cpu-simd-f16 backend
/// (any precision is accepted; kFloat32 simply screens unrounded
/// values).  Same argument validation as topk_spmv_exact.
[[nodiscard]] std::vector<core::TopKEntry> topk_spmv_screen(
    const BlockedCsr& layout, std::span<const float> x, int top_k,
    const SimdQueryOptions& options = {}, SimdKernelStats* stats = nullptr);

}  // namespace topk::simd
