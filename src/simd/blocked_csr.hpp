// Screening layout for the vectorized Top-K SpMV backend.
//
// The cpu-simd backend runs every query in two phases (see
// simd/topk_simd.hpp): a wide f32 screening scan that brackets each
// row's score with a rigorous error interval, then an exact
// double-precision rescore (Csr::row_dot) of only the rows whose
// interval overlaps the running k-th best.  BlockedCsr is what the
// screening phase reads.  It keeps two representations and picks one
// per matrix at build time:
//
//   kBlocked  the row's non-zeros re-packed into dense 16-column
//             blocks: one uint32 block id plus 16 f32 values per
//             *occupied* block (block-level zero skipping — absent
//             blocks cost nothing, and padding lanes hold +0.0f, an
//             exact no-op for the accumulator).
//             The kernels then run pure contiguous FMAs, no gathers.
//             Worth its footprint when rows land >= min_block_fill
//             non-zeros in each occupied block (clustered columns).
//
//   kGather   rows re-grouped 16 at a time (sorted by non-zero count
//             so groups are homogeneous) into a transposed, padded
//             term-major layout: term t of group g holds 16 columns
//             then 16 values, one LANE PER ROW.  The kernels keep one
//             vector accumulator per group half and gather x per term,
//             so a row's score finishes in its own lane — no
//             horizontal reduction anywhere, which matters because at
//             ~20 nnz/row the per-row epilogue, not the arithmetic,
//             dominates.  Padding lanes store column 0 with value
//             +0.0f (an exact no-op); the right default for uniformly
//             sparse rows, where dense blocks would be mostly padding.
//
// The kHalf precision mode pre-rounds every stored value through IEEE
// binary16 (fixed/half.hpp) — the storage format of the paper's GPU
// F16 baseline — and the kernels then skip the rescore phase entirely,
// making the backend approximate (gated by the same recall floor as
// gpu-f16 in the tests).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace topk::simd {

/// Columns per screening block, rows per gather group, and the widest
/// vector the kernels use (one AVX-512 register, two AVX2 registers).
inline constexpr std::uint32_t kBlockCols = 16;

/// position_row() value of a padding lane in a partial final gather
/// group (no row of the matrix; its scores are discarded).
inline constexpr std::uint32_t kInvalidRow = 0xFFFFFFFFu;

/// Margin scale of the screening error bound (see screen_bound()):
/// f32 accumulation of n products has error <= gamma_n * sum|p_i| with
/// gamma_n ~ n * 2^-24; 2^-22 plus the +kScreenSlackTerms term keeps
/// >= 4x headroom.  The slack also covers evaluating the margin and
/// the score bounds themselves in f32 (each op adds relative error
/// 2^-24, and |score| <= ||row||*||x|| keeps every rounding below
/// margin/4), so the rescore filter runs float-only.
inline constexpr double kScreenEps = 0x1p-22;
inline constexpr double kScreenSlackTerms = 64.0;

/// Value precision of the screening scan.
enum class ScreenPrecision {
  kFloat32,  ///< exact backend: f32 screen + row_dot rescore
  kHalf,     ///< approximate backend: binary16-rounded values, no rescore
};

/// Memory representation the screening kernels read (see header
/// comment).
enum class Strategy { kBlocked, kGather };

struct LayoutOptions {
  ScreenPrecision precision = ScreenPrecision::kFloat32;
  /// Forced representation; nullopt picks kBlocked when the mean
  /// occupied-block fill reaches min_block_fill.
  std::optional<Strategy> strategy;
  /// Auto-strategy threshold: mean non-zeros per occupied block at
  /// which dense blocks beat gathers (>= 2 amortises the 4x padding
  /// bandwidth against gather latency).
  double min_block_fill = 2.0;
};

/// Immutable screening layout over (and sharing ownership of) a CSR
/// matrix.
class BlockedCsr {
 public:
  BlockedCsr() = default;

  /// Builds the layout.  Throws std::invalid_argument on a null
  /// matrix.
  [[nodiscard]] static BlockedCsr build(
      std::shared_ptr<const sparse::Csr> matrix, LayoutOptions options = {});

  [[nodiscard]] const sparse::Csr& source() const noexcept { return *matrix_; }
  [[nodiscard]] const std::shared_ptr<const sparse::Csr>& shared_source()
      const noexcept {
    return matrix_;
  }
  [[nodiscard]] std::uint32_t rows() const noexcept { return matrix_->rows(); }
  [[nodiscard]] std::uint32_t cols() const noexcept { return matrix_->cols(); }
  [[nodiscard]] Strategy strategy() const noexcept { return strategy_; }
  [[nodiscard]] ScreenPrecision precision() const noexcept {
    return precision_;
  }

  /// kBlocked arrays (empty under kGather).  Row r owns blocks
  /// [block_ptr()[r], block_ptr()[r+1]); block b covers columns
  /// [block_id()[b]*16, +16) with values block_vals()[b*16 .. b*16+16).
  [[nodiscard]] const std::vector<std::uint64_t>& block_ptr() const noexcept {
    return block_ptr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& block_id() const noexcept {
    return block_id_;
  }
  [[nodiscard]] const std::vector<float>& block_vals() const noexcept {
    return block_vals_;
  }

  /// kGather arrays (empty under kBlocked).  Group g covers scan
  /// positions [g*16, g*16+16) and its terms live at flat slots
  /// [group_off()[g]*16, group_off()[g+1]*16): slot t*16+lane of
  /// group_cols()/group_vals() is term t of the row at position
  /// g*16+lane.  Padding (a lane past its row's non-zeros, or a
  /// kInvalidRow lane of the final group) holds column 0 / value 0.
  /// The screen is L3-bandwidth-bound at paper-scale, so columns are
  /// stored 16-bit when they fit (narrow_cols(); cols() <= 65536 — the
  /// paper's M is at most 1024), filling group_cols16() and leaving
  /// group_cols() empty; otherwise the reverse.
  [[nodiscard]] const std::vector<std::uint64_t>& group_off() const noexcept {
    return group_off_;
  }
  [[nodiscard]] bool narrow_cols() const noexcept { return narrow_cols_; }
  [[nodiscard]] const std::vector<std::uint32_t>& group_cols() const noexcept {
    return group_cols_;
  }
  [[nodiscard]] const std::vector<std::uint16_t>& group_cols16()
      const noexcept {
    return group_cols16_;
  }
  [[nodiscard]] const std::vector<float>& group_vals() const noexcept {
    return group_vals_;
  }

  /// Scan positions (the index space of the kernels' score/abs-sum
  /// outputs): row ids under kBlocked; the nnz-sorted row permutation,
  /// padded to whole groups of 16, under kGather.  Always a multiple
  /// of 16 for kGather so thread ranges can stay group-aligned.
  [[nodiscard]] std::uint32_t position_count() const noexcept {
    if (strategy_ == Strategy::kBlocked) {
      return rows();
    }
    return static_cast<std::uint32_t>(group_off_.empty()
                                          ? 0
                                          : (group_off_.size() - 1) *
                                                kBlockCols);
  }

  /// Row scanned at position p (kInvalidRow for a padding lane).
  [[nodiscard]] std::uint32_t position_row(std::uint32_t p) const {
    if (strategy_ == Strategy::kBlocked) {
      return p;
    }
    return order_[p];
  }

  /// Number of f32 terms the screening scan accumulates at position p
  /// — the n in the error bound gamma_n * sum|v_i * x_i| the rescore
  /// filter uses.  Padding terms are +0.0f exact no-ops but still
  /// count as additions (blocked rows pad to whole blocks; gather
  /// rows pad to their group's longest row).
  [[nodiscard]] std::uint64_t position_terms(std::uint32_t p) const {
    if (strategy_ == Strategy::kBlocked) {
      return (block_ptr_[p + 1] - block_ptr_[p]) * kBlockCols;
    }
    const std::uint32_t g = p / kBlockCols;
    return group_off_[g + 1] - group_off_[g];
  }

  /// Per-position screening error bound, baked at build time:
  /// screen_bound()[p] = (position_terms(p) + kScreenSlackTerms) *
  /// kScreenEps * ||row||_2 (0 for padding lanes).  Multiplied by
  /// ||x||_2 at query time it dominates the f32 scan's rounding error
  /// (gamma_n * sum|v_i*x_i| <= gamma_n * ||row||*||x|| by
  /// Cauchy-Schwarz) by >= 4x, so the scan needs no per-query
  /// absolute-product accumulator at all — the margin costs one
  /// multiply per row in the filter loop instead of one FMA per term
  /// in the kernel.
  [[nodiscard]] const std::vector<float>& screen_bound() const noexcept {
    return screen_bound_;
  }

  /// Bytes owned by the layout beyond the shared source CSR.
  [[nodiscard]] std::uint64_t extra_bytes() const noexcept {
    return block_ptr_.size() * sizeof(std::uint64_t) +
           block_id_.size() * sizeof(std::uint32_t) +
           block_vals_.size() * sizeof(float) +
           order_.size() * sizeof(std::uint32_t) +
           group_off_.size() * sizeof(std::uint64_t) +
           group_cols_.size() * sizeof(std::uint32_t) +
           group_cols16_.size() * sizeof(std::uint16_t) +
           group_vals_.size() * sizeof(float) +
           screen_bound_.size() * sizeof(float);
  }

 private:
  std::shared_ptr<const sparse::Csr> matrix_;
  Strategy strategy_ = Strategy::kGather;
  ScreenPrecision precision_ = ScreenPrecision::kFloat32;
  bool narrow_cols_ = false;
  std::vector<std::uint64_t> block_ptr_;
  std::vector<std::uint32_t> block_id_;
  std::vector<float> block_vals_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint64_t> group_off_;
  std::vector<std::uint32_t> group_cols_;
  std::vector<std::uint16_t> group_cols16_;
  std::vector<float> group_vals_;
  std::vector<float> screen_bound_;
};

}  // namespace topk::simd
