#include "simd/blocked_csr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "fixed/half.hpp"

namespace topk::simd {

namespace {

float screen_value(float value, ScreenPrecision precision) {
  if (precision == ScreenPrecision::kHalf) {
    return fixed::half_bits_to_float(fixed::float_to_half_bits(value));
  }
  return value;
}

}  // namespace

BlockedCsr BlockedCsr::build(std::shared_ptr<const sparse::Csr> matrix,
                             LayoutOptions options) {
  if (!matrix) {
    throw std::invalid_argument("simd::BlockedCsr: null matrix");
  }
  BlockedCsr layout;
  layout.matrix_ = std::move(matrix);
  layout.precision_ = options.precision;
  const sparse::Csr& csr = *layout.matrix_;

  // One pass to count occupied blocks (CSR rows are column-sorted, so
  // a block boundary is just a change of c / kBlockCols).
  std::uint64_t occupied = 0;
  for (std::uint32_t r = 0; r < csr.rows(); ++r) {
    std::uint32_t prev_block = std::numeric_limits<std::uint32_t>::max();
    for (const std::uint32_t c : csr.row_cols(r)) {
      const std::uint32_t block = c / kBlockCols;
      if (block != prev_block) {
        ++occupied;
        prev_block = block;
      }
    }
  }
  const double fill =
      occupied == 0 ? 0.0
                    : static_cast<double>(csr.nnz()) /
                          static_cast<double>(occupied);
  layout.strategy_ = options.strategy.value_or(fill >= options.min_block_fill
                                                   ? Strategy::kBlocked
                                                   : Strategy::kGather);

  if (layout.strategy_ == Strategy::kBlocked) {
    layout.block_ptr_.reserve(static_cast<std::size_t>(csr.rows()) + 1);
    layout.block_ptr_.push_back(0);
    layout.block_id_.reserve(occupied);
    layout.block_vals_.assign(occupied * kBlockCols, 0.0f);
    for (std::uint32_t r = 0; r < csr.rows(); ++r) {
      const std::span<const std::uint32_t> cols = csr.row_cols(r);
      const std::span<const float> vals = csr.row_values(r);
      std::uint32_t prev_block = std::numeric_limits<std::uint32_t>::max();
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const std::uint32_t block = cols[i] / kBlockCols;
        if (block != prev_block) {
          layout.block_id_.push_back(block);
          prev_block = block;
        }
        const std::size_t slot =
            (layout.block_id_.size() - 1) * kBlockCols + cols[i] % kBlockCols;
        // += so a non-canonical row with duplicate columns still sums
        // (the screen is bracketed by margins either way; the rescore
        // reads the untouched CSR).
        layout.block_vals_[slot] += screen_value(vals[i], layout.precision_);
      }
      layout.block_ptr_.push_back(layout.block_id_.size());
    }
  } else {
    // Transposed gather groups: rows sorted by non-zero count so each
    // group of 16 pads only to its own longest row, then laid out
    // term-major (16 columns + 16 values per term, one lane per row).
    std::vector<std::uint32_t> order(csr.rows());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return csr.row_cols(a).size() < csr.row_cols(b).size();
                     });
    const std::uint32_t groups =
        (csr.rows() + kBlockCols - 1) / kBlockCols;
    layout.order_ = std::move(order);
    layout.order_.resize(static_cast<std::size_t>(groups) * kBlockCols,
                         kInvalidRow);
    layout.group_off_.reserve(static_cast<std::size_t>(groups) + 1);
    layout.group_off_.push_back(0);
    for (std::uint32_t g = 0; g < groups; ++g) {
      std::uint64_t terms = 0;
      for (std::uint32_t lane = 0; lane < kBlockCols; ++lane) {
        const std::uint32_t row = layout.order_[g * kBlockCols + lane];
        if (row != kInvalidRow) {
          terms = std::max<std::uint64_t>(terms, csr.row_cols(row).size());
        }
      }
      layout.group_off_.push_back(layout.group_off_.back() + terms);
    }
    const std::size_t slots =
        static_cast<std::size_t>(layout.group_off_.back()) * kBlockCols;
    layout.narrow_cols_ = csr.cols() <= 65536;
    if (layout.narrow_cols_) {
      layout.group_cols16_.assign(slots, 0);  // pad: column 0, value +0.0f
    } else {
      layout.group_cols_.assign(slots, 0);
    }
    layout.group_vals_.assign(slots, 0.0f);
    for (std::uint32_t g = 0; g < groups; ++g) {
      const std::size_t base =
          static_cast<std::size_t>(layout.group_off_[g]) * kBlockCols;
      for (std::uint32_t lane = 0; lane < kBlockCols; ++lane) {
        const std::uint32_t row = layout.order_[g * kBlockCols + lane];
        if (row == kInvalidRow) {
          continue;
        }
        const std::span<const std::uint32_t> cols = csr.row_cols(row);
        const std::span<const float> vals = csr.row_values(row);
        for (std::size_t t = 0; t < cols.size(); ++t) {
          const std::size_t slot = base + t * kBlockCols + lane;
          if (layout.narrow_cols_) {
            layout.group_cols16_[slot] = static_cast<std::uint16_t>(cols[t]);
          } else {
            layout.group_cols_[slot] = cols[t];
          }
          layout.group_vals_[slot] = screen_value(vals[t], layout.precision_);
        }
      }
    }
  }

  // Bake the per-position screening error bound (see screen_bound()):
  // the padded-term count is a layout property and the row norm a
  // matrix property, so the only query-time factor left is ||x||_2.
  const std::uint32_t positions = layout.position_count();
  layout.screen_bound_.assign(positions, 0.0f);
  for (std::uint32_t p = 0; p < positions; ++p) {
    const std::uint32_t row = layout.position_row(p);
    if (row == kInvalidRow) {
      continue;
    }
    double norm_sq = 0.0;
    for (const float value : csr.row_values(row)) {
      norm_sq += static_cast<double>(value) * static_cast<double>(value);
    }
    layout.screen_bound_[p] = static_cast<float>(
        (static_cast<double>(layout.position_terms(p)) + kScreenSlackTerms) *
        kScreenEps * std::sqrt(norm_sq));
  }
  return layout;
}

}  // namespace topk::simd
