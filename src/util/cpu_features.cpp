#include "util/cpu_features.hpp"

#include <cstdlib>
#include <thread>

namespace topk::util {

namespace {

CpuFeatures probe() {
  CpuFeatures features;
#if defined(__x86_64__) && defined(__GNUC__)
  const bool no_avx = std::getenv("TOPK_NO_AVX") != nullptr;
  const bool no_avx512 = std::getenv("TOPK_NO_AVX512") != nullptr;
  features.avx2 = !no_avx && __builtin_cpu_supports("avx2") &&
                  __builtin_cpu_supports("fma");
  // AVX-512 is modelled as a strict upgrade of the AVX2 path: the
  // 512-bit kernels assume FMA too, so avx512 implies avx2 here.
  features.avx512 = features.avx2 && !no_avx512 &&
                    __builtin_cpu_supports("avx512f");
  features.sha_ni = std::getenv("TOPK_NO_SHA_NI") == nullptr &&
                    __builtin_cpu_supports("sha") &&
                    __builtin_cpu_supports("sse4.1") &&
                    __builtin_cpu_supports("ssse3");
#endif
  return features;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

int default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace topk::util
