// Deterministic, fast PRNG for matrix generation and Monte Carlo runs.
//
// xoshiro256++ seeded through SplitMix64.  Satisfies
// std::uniform_random_bit_generator so it plugs into <random>
// distributions, while also offering the handful of samplers the
// generators need directly (uniform doubles, bounded ints without
// modulo bias).
#pragma once

#include <cstdint>
#include <limits>

namespace topk::util {

/// SplitMix64 step; used for seeding and as a cheap hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ by Blackman & Vigna: 256-bit state, sub-ns step,
/// excellent statistical quality for simulation workloads.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) {
      return 0;
    }
    // Rejection-free multiply-shift with widening; the correction loop
    // triggers with probability < 2^-32 for realistic bounds.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Splits off an independent stream (seeded from this stream's output);
  /// handy for reproducible per-thread generators.
  [[nodiscard]] Xoshiro256 split() noexcept { return Xoshiro256((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace topk::util
