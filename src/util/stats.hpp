// Small running-statistics helpers shared by tests and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace topk::util {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of `values` by linear
/// interpolation on a sorted copy.  Throws std::invalid_argument on an
/// empty input or q outside [0,1].
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Arithmetic mean; throws std::invalid_argument on empty input.
[[nodiscard]] double mean(std::span<const double> values);

/// Geometric mean of strictly positive values; throws otherwise.
[[nodiscard]] double geometric_mean(std::span<const double> values);

}  // namespace topk::util
