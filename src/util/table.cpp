#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace topk::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TablePrinter: header must not be empty");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TablePrinter: row width does not match header");
  }
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  const auto print_separator = [&] {
    os << '+';
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };

  print_separator();
  print_cells(header_);
  print_separator();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_separator();
    } else {
      print_cells(row.cells);
    }
  }
  print_separator();
  return os.str();
}

void TablePrinter::print(std::ostream& os) const { os << to_string(); }

std::string format_double(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string format_speedup(double ratio) {
  std::ostringstream os;
  if (std::llround(ratio * 10.0) >= 100) {  // rounds to >= 10.0
    os << static_cast<long long>(std::llround(ratio)) << 'x';
  } else {
    os.setf(std::ios::fixed);
    os.precision(1);
    os << ratio << 'x';
  }
  return os.str();
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1000.0 && unit < 4) {
    bytes /= 1000.0;
    ++unit;
  }
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(bytes < 10 ? 2 : (bytes < 100 ? 1 : 0));
  os << bytes << ' ' << kUnits[unit];
  return os.str();
}

}  // namespace topk::util
