// Runtime CPU feature detection, shared by every runtime-dispatched
// kernel in the repo (the SHA-NI digest path in persist/digest.cpp and
// the AVX2/AVX-512 Top-K SpMV kernels in simd/).
//
// The probe runs once per process and is cached; environment overrides
// force the portable paths so fallback code stays testable on hardware
// that would otherwise always dispatch to the wide units:
//
//   TOPK_NO_AVX      disable AVX2 *and* AVX-512 (scalar SpMV kernels)
//   TOPK_NO_AVX512   disable AVX-512 only (AVX2 kernels still run)
//   TOPK_NO_SHA_NI   disable the SHA-NI SHA-256 compression loop
//
// Because the probe is cached, one process only ever exercises one
// implementation per kernel; CI re-runs the suites with the overrides
// set to pin every path (see .github/workflows/ci.yml).
#pragma once

namespace topk::util {

/// The instruction-set extensions the repo dispatches on.  All fields
/// are false on non-x86 builds or non-GNU compilers (the dispatched
/// kernels are compiled out there too, so the flags and the code agree
/// by construction).
struct CpuFeatures {
  /// AVX2 + FMA: the 256-bit float kernels.
  bool avx2 = false;
  /// AVX-512F (implies avx2 here): the 512-bit float kernels.
  bool avx512 = false;
  /// SHA + SSE4.1 + SSSE3: the SHA-NI SHA-256 compression loop.
  bool sha_ni = false;
};

/// The cached per-process probe (CPUID via __builtin_cpu_supports,
/// masked by the TOPK_NO_* environment overrides read once at first
/// call).
[[nodiscard]] const CpuFeatures& cpu_features() noexcept;

/// std::thread::hardware_concurrency() with the standard's "0 =
/// unknown" mapped to 1.  The one definition of the fallback every
/// "threads = 0 means hardware" option resolves through — it used to
/// be copy-pasted per call site, where the copies could drift.
/// tools/lint.py (-Wraw-hwconcurrency) forbids direct
/// hardware_concurrency() calls outside util/.
[[nodiscard]] int default_thread_count() noexcept;

}  // namespace topk::util
