// Persistent worker pool — foundation-layer concurrency infrastructure.
//
// The seed's TopKAccelerator spawned and joined raw std::threads on
// every query() / query_batch() call and split work with static block
// partitioning.  This pool replaces both costs: workers are created
// once and reused across calls, and parallel_for() hands out items one
// at a time through an atomic counter, so a skewed item (a long core
// stream, an expensive query) never stalls a whole static block —
// the dynamic-scheduling argument of the all-pairs-similarity serving
// literature (see PAPERS.md).
//
// Deadlock-free nesting: the thread that calls parallel_for() always
// participates in the loop, so every job completes even if no pool
// worker is free.  Pool workers may therefore call parallel_for()
// themselves (the async serving path does) without risk.
//
// The pool lives in util/ (not serve/) because every compute layer —
// core's batch quantisation, the CPU baselines, the SIMD kernels, the
// shard scatter — parallelises on it: the architecture manifest
// (tools/analysis/layers.toml) forbids those layers from reaching up
// into the serving tier.  Telemetry is therefore not a dependency
// here; the serving layer observes the pool through the
// PoolInstrumentation hooks below instead.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace topk::util {

/// Observation hooks the serving layer installs to publish pool
/// activity into its metrics registry (util/ itself must stay ignorant
/// of the telemetry vocabulary — see tools/analysis/layers.toml).
/// Plain function pointers so the hot-path read is one lock-free
/// atomic load and a null check.
struct PoolInstrumentation {
  /// Called with the new thread count after the pool grows.
  void (*workers)(double) = nullptr;
  /// Called with +1 / -1 around every task a pool worker executes.
  void (*busy_delta)(double) = nullptr;
  /// Called once per task a pool worker executes.
  void (*task)() = nullptr;
};

class ThreadPool {
 public:
  /// Spawns `workers` persistent threads (0 is valid: every
  /// parallel_for then runs entirely on the calling thread).
  /// Throws std::invalid_argument for negative counts.
  explicit ThreadPool(int workers = 0);

  /// Drains queued tasks, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current persistent worker count.
  [[nodiscard]] int workers() const;

  /// Grows the pool to at least `workers` threads (never shrinks).
  /// Counts above kMaxWorkers are clamped.
  void ensure_workers(int workers);

  /// Runs fn(i) for every i in [0, n).  The calling thread participates
  /// and up to `concurrency - 1` pool workers help, each claiming items
  /// dynamically from a shared atomic counter; total concurrency is
  /// therefore at most `concurrency` (values < 1 mean "calling thread
  /// only").  Blocks until all n items finished; if any invocation
  /// threw, the first exception is rethrown here.  Item-to-thread
  /// assignment is nondeterministic, so callers must make fn(i) write
  /// only to slot i of preallocated storage for deterministic results.
  void parallel_for(std::size_t n, int concurrency,
                    const std::function<void(std::size_t)>& fn);

  /// Enqueues a fire-and-forget task.  With zero workers the task runs
  /// inline.  Never blocks (the queue is unbounded; bounded admission
  /// is the QueryEngine's job).
  void post(std::function<void()> task);

  /// Installs the process-wide observation hooks (affects every pool,
  /// shared or private).  `hooks` must point at storage with static
  /// duration; pass nullptr to detach.  Typically installed once by
  /// the serving layer before traffic; late installation only misses
  /// events, never tears state.
  static void set_instrumentation(const PoolInstrumentation* hooks) noexcept;

  /// Upper bound on pool size accepted by ensure_workers().
  static constexpr int kMaxWorkers = 256;

 private:
  void worker_loop();

  mutable util::Mutex mutex_;
  util::CondVar work_available_;
  std::deque<std::function<void()>> tasks_ TOPK_GUARDED_BY(mutex_);
  /// Guarded for growth (ensure_workers); the destructor joins with the
  /// lock released, which is safe because workers are never removed
  /// while the pool lives.
  std::vector<std::thread> threads_ TOPK_GUARDED_BY(mutex_);
  bool stopping_ TOPK_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool shared by TopKAccelerator::query / query_batch and
/// any QueryEngine that does not own a private pool.  Lazily
/// constructed; grows on demand up to ThreadPool::kMaxWorkers.
[[nodiscard]] ThreadPool& shared_pool();

}  // namespace topk::util
