// Bit-granular packing primitives used by the BS-CSR encoder/decoder.
//
// BS-CSR packets are 512-bit blocks whose fields (new_row flag, ptr,
// idx, val arrays) have data-dependent widths (4..32 bits).  BitWriter
// appends fields LSB-first into a growing word buffer; BitReader reads
// them back from arbitrary bit offsets.  Both are deliberately simple
// and fully bounds-checked: encoding happens once per matrix, and the
// decoder models a hardware unit whose correctness matters more than
// its software speed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace topk::util {

/// Appends bit fields (up to 64 bits each) to a little-endian bit
/// stream stored as 64-bit words.  Bit 0 of word 0 is the first bit.
class BitWriter {
 public:
  /// Appends the low `bits` bits of `value`.  Throws
  /// std::invalid_argument if `bits` is outside [0, 64] or `value` has
  /// set bits above `bits`.
  void append(std::uint64_t value, int bits);

  /// Pads with zero bits so that bit_size() becomes a multiple of
  /// `bit_boundary` (e.g. 512 to close a packet).  Throws
  /// std::invalid_argument if `bit_boundary <= 0`.
  void align_to(int bit_boundary);

  /// Total number of bits appended so far (including alignment padding).
  [[nodiscard]] std::size_t bit_size() const noexcept { return bit_size_; }

  /// Backing words; the final word is zero-padded above bit_size().
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  /// Moves the backing words out, leaving the writer empty.
  [[nodiscard]] std::vector<std::uint64_t> take_words();

  void clear() noexcept {
    words_.clear();
    bit_size_ = 0;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bit_size_ = 0;
};

/// Reads bit fields from a word buffer produced by BitWriter.
class BitReader {
 public:
  /// `words` must outlive the reader.  `bit_limit` is the number of
  /// valid bits (defaults to the full buffer).
  explicit BitReader(std::span<const std::uint64_t> words,
                     std::size_t bit_limit = SIZE_MAX);

  /// Reads `bits` bits starting at absolute offset `bit_pos`.
  /// Throws std::out_of_range when the read crosses the bit limit and
  /// std::invalid_argument for `bits` outside [0, 64].
  [[nodiscard]] std::uint64_t read(std::size_t bit_pos, int bits) const;

  /// Number of addressable bits.
  [[nodiscard]] std::size_t bit_size() const noexcept { return bit_limit_; }

 private:
  std::span<const std::uint64_t> words_;
  std::size_t bit_limit_;
};

/// Convenience: number of bits needed to represent all values in
/// [0, max_value] (i.e. ceil(log2(max_value + 1)), and 1 for 0).
[[nodiscard]] int bits_for_value(std::uint64_t max_value) noexcept;

}  // namespace topk::util
