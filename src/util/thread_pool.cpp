#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>

#include "util/sync.hpp"

namespace topk::util {

namespace {

/// Process-wide hook table.  release store / acquire load: an observer
/// installed before traffic is visible to every worker, and the
/// pointed-at storage is required to be static, so a stale null read
/// only drops an event.
std::atomic<const PoolInstrumentation*> instrumentation{nullptr};

const PoolInstrumentation* hooks() noexcept {
  return instrumentation.load(std::memory_order_acquire);
}

/// Shared state of one parallel_for call.  Helpers posted to the task
/// queue hold a shared_ptr, so the job outlives the caller's stack
/// frame even if a helper wakes up after the loop already finished.
struct ParallelJob {
  /// relaxed: the ticket counter only hands out distinct indices; the
  /// work itself synchronises through `completed` below.
  std::atomic<std::size_t> next{0};
  /// acq_rel increments / acquire reads: the final increment's release
  /// publishes every fn(i) write to the caller that observes
  /// completed == n (with or without the condvar round trip).
  std::atomic<std::size_t> completed{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  util::Mutex mutex;
  util::CondVar done;
  std::exception_ptr first_exception TOPK_GUARDED_BY(mutex);

  /// Claims items until the counter runs out.  Exceptions do not cancel
  /// remaining items (every index runs exactly once regardless); only
  /// the first one is kept for the caller to rethrow.
  void run() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        (*fn)(i);
      } catch (...) {
        util::MutexLock lock(mutex);
        if (!first_exception) {
          first_exception = std::current_exception();
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        util::MutexLock lock(mutex);
        done.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::set_instrumentation(
    const PoolInstrumentation* new_hooks) noexcept {
  instrumentation.store(new_hooks, std::memory_order_release);
}

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) {
    throw std::invalid_argument("ThreadPool: negative worker count");
  }
  ensure_workers(workers);
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  // Joining reads threads_ without the lock: safe because workers are
  // only ever added, never removed, and stopping_ stops additions (the
  // analysis is silent in destructors — no concurrent access remains).
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

int ThreadPool::workers() const {
  util::MutexLock lock(mutex_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::ensure_workers(int workers) {
  const int target = std::min(workers, kMaxWorkers);
  std::size_t count = 0;
  {
    util::MutexLock lock(mutex_);
    while (static_cast<int>(threads_.size()) < target) {
      threads_.emplace_back([this] { worker_loop(); });
    }
    count = threads_.size();
  }
  if (const PoolInstrumentation* h = hooks(); h != nullptr && h->workers) {
    h->workers(static_cast<double>(count));
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) {
        work_available_.wait(mutex_);
      }
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    // Utilization bookkeeping brackets the task: the installed hooks
    // (telemetry gauge/counter cells in the serving build) are
    // lock-free, so this stays off the pool mutex.
    const PoolInstrumentation* h = hooks();
    if (h != nullptr && h->busy_delta) {
      h->busy_delta(1.0);
    }
    if (h != nullptr && h->task) {
      h->task();
    }
    task();
    if (h != nullptr && h->busy_delta) {
      h->busy_delta(-1.0);
    }
  }
}

void ThreadPool::post(std::function<void()> task) {
  {
    util::MutexLock lock(mutex_);
    if (!stopping_ && !threads_.empty()) {
      tasks_.push_back(std::move(task));
      work_available_.notify_one();
      return;
    }
  }
  task();  // no workers (or shutting down): run inline
}

void ThreadPool::parallel_for(std::size_t n, int concurrency,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const int helper_budget =
      static_cast<int>(std::min<std::size_t>(
          n - 1, concurrency > 1 ? static_cast<std::size_t>(concurrency - 1) : 0));
  if (helper_budget == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  auto job = std::make_shared<ParallelJob>();
  job->n = n;
  job->fn = &fn;

  int helpers = helper_budget;
  {
    util::MutexLock lock(mutex_);
    helpers = std::min(helpers, static_cast<int>(threads_.size()));
    if (!stopping_) {
      for (int h = 0; h < helpers; ++h) {
        tasks_.push_back([job] { job->run(); });
      }
      if (helpers == 1) {
        work_available_.notify_one();
      } else if (helpers > 1) {
        work_available_.notify_all();
      }
    }
  }

  job->run();  // caller participates: progress is guaranteed

  util::MutexLock lock(job->mutex);
  while (job->completed.load(std::memory_order_acquire) != job->n) {
    job->done.wait(job->mutex);
  }
  if (job->first_exception) {
    std::rethrow_exception(job->first_exception);
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace topk::util
