// Thread-safety-annotated synchronisation primitives — the repo's only
// sanctioned mutex/lock vocabulary (tools/lint.py -Wraw-mutex enforces
// it).
//
// Every wrapper is a zero-cost drop-in for its std counterpart, plus
// Clang Thread Safety Analysis capability annotations, so the locking
// discipline of the whole concurrent surface (util::ThreadPool,
// serve::QueryEngine, shard::ShardedIndex replica routing,
// index::DeltaIndex, shard::MutableShardedIndex's generation swap,
// persist::Compactor) is proved at compile time by the CI
// static-analysis leg (clang++ -Wthread-safety -Werror=thread-safety)
// instead of only dynamically by whichever interleavings the TSan leg
// happens to hit.  On GCC (and any compiler without the attributes)
// every macro expands to nothing and the wrappers compile to the bare
// std types — the Debug/Release legs build byte-for-byte the same
// logic.
//
// Usage pattern (see util/thread_pool.hpp for the full idiom):
//
//   util::Mutex mutex_;
//   util::CondVar ready_;
//   std::deque<Task> tasks_ TOPK_GUARDED_BY(mutex_);
//
//   void worker() {
//     util::MutexLock lock(mutex_);
//     while (tasks_.empty()) {
//       ready_.wait(mutex_);      // REQUIRES(mutex_): proven held
//     }
//     ...
//   }
//
// Private methods that assume a held lock are annotated
// TOPK_REQUIRES(m) / TOPK_REQUIRES_SHARED(m) instead of re-locking;
// callers that violate the contract fail the clang build.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---- annotation macro set ------------------------------------------------
// Clang-only: GCC accepts none of these attributes, so they vanish
// there (the "no-op build" leg tests/test_sync.cpp pins).

#if defined(__clang__) && defined(__has_attribute)
#define TOPK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TOPK_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Declares a class to be a capability (lockable) type.
#define TOPK_CAPABILITY(x) TOPK_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires in its ctor, releases in its dtor.
#define TOPK_SCOPED_CAPABILITY TOPK_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while holding the given capability.
#define TOPK_GUARDED_BY(x) TOPK_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be touched while holding the given capability.
#define TOPK_PT_GUARDED_BY(x) TOPK_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability held exclusively on entry.
#define TOPK_REQUIRES(...) \
  TOPK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function requires the capability held (shared suffices) on entry.
#define TOPK_REQUIRES_SHARED(...) \
  TOPK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability exclusively; caller must not hold it.
#define TOPK_ACQUIRE(...) \
  TOPK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function acquires the capability shared.
#define TOPK_ACQUIRE_SHARED(...) \
  TOPK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (exclusive or shared).
#define TOPK_RELEASE(...) \
  TOPK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function releases a shared hold of the capability.
#define TOPK_RELEASE_SHARED(...) \
  TOPK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define TOPK_TRY_ACQUIRE(...) \
  TOPK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Shared flavour of TOPK_TRY_ACQUIRE.
#define TOPK_TRY_ACQUIRE_SHARED(...) \
  TOPK_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (non-reentrancy / deadlock guard).
#define TOPK_EXCLUDES(...) TOPK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Asserts (at runtime, to the analysis) that the capability is held.
#define TOPK_ASSERT_CAPABILITY(x) \
  TOPK_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the given capability.
#define TOPK_RETURN_CAPABILITY(x) TOPK_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch.  Every use MUST carry a comment justifying why the
/// analysis cannot see the invariant (the CI gate greps for naked
/// waivers and fails on them).
#define TOPK_NO_THREAD_SAFETY_ANALYSIS \
  TOPK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace topk::util {

class CondVar;

// ---- capabilities --------------------------------------------------------

/// std::mutex with the mutex capability: fields it guards carry
/// TOPK_GUARDED_BY(m), and the analysis proves every touch happens
/// under the lock.
class TOPK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TOPK_ACQUIRE() { mutex_.lock(); }
  void unlock() TOPK_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() TOPK_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class CondVar;  // wait() needs the raw handle to sleep on
  std::mutex mutex_;
};

/// std::shared_mutex with the shared/exclusive capability split:
/// readers hold it shared (concurrent), writers exclusively.
class TOPK_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() TOPK_ACQUIRE() { mutex_.lock(); }
  void unlock() TOPK_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() TOPK_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }
  void lock_shared() TOPK_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() TOPK_RELEASE_SHARED() { mutex_.unlock_shared(); }
  [[nodiscard]] bool try_lock_shared() TOPK_TRY_ACQUIRE_SHARED(true) {
    return mutex_.try_lock_shared();
  }

 private:
  std::shared_mutex mutex_;
};

// ---- scoped locks --------------------------------------------------------

/// std::lock_guard over a Mutex (exclusive, scope-bound).
class TOPK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) TOPK_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() TOPK_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock-as-guard over a SharedMutex (exclusive).
class TOPK_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) TOPK_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterLock() TOPK_RELEASE() { mutex_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// std::shared_lock-as-guard over a SharedMutex (shared).
class TOPK_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) TOPK_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() TOPK_RELEASE() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// ---- condition variable --------------------------------------------------

/// std::condition_variable bound to util::Mutex.  wait() REQUIRES the
/// mutex, so "waiting without the lock" is a compile error; predicates
/// are open-coded while-loops at the call site (a predicate lambda
/// would be a separate function to the analysis and lose the proof):
///
///   util::MutexLock lock(mutex_);
///   while (!ready_condition) {
///     cv_.wait(mutex_);
///   }
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, sleeps, reacquires before returning.
  /// Spurious wakeups happen; call in a while-loop over the condition.
  void wait(Mutex& mutex) TOPK_REQUIRES(mutex) {
    // Adopt the already-held native mutex for the wait, then hand it
    // back: the capability bookkeeping never sees the lock move.
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace topk::util
