// ASCII table rendering for the benchmark harness.
//
// Every bench binary reproduces a table or figure from the paper as
// rows of text; TablePrinter keeps them aligned and consistent so the
// output can be diffed against EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace topk::util {

/// Column-aligned ASCII table.  Usage:
///   TablePrinter t({"design", "time [ms]", "speedup"});
///   t.add_row({"FPGA 20b", "2.63", "106x"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; throws std::invalid_argument if the cell count does
  /// not match the header.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal separator line at the current position.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  void print(std::ostream& os) const;

  /// Renders the whole table to a string (used by tests).
  [[nodiscard]] std::string to_string() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with `digits` significant decimal places (fixed
/// notation), e.g. format_double(3.14159, 2) == "3.14".
[[nodiscard]] std::string format_double(double value, int digits);

/// Formats a ratio as the paper prints speedups, e.g. "106x".
[[nodiscard]] std::string format_speedup(double ratio);

/// Human-readable byte size ("1.7 GB", "412 MB").
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace topk::util
