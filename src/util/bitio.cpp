#include "util/bitio.hpp"

#include <stdexcept>

namespace topk::util {

void BitWriter::append(std::uint64_t value, int bits) {
  if (bits < 0 || bits > 64) {
    throw std::invalid_argument("BitWriter::append: bits must be in [0, 64]");
  }
  if (bits == 0) {
    if (value != 0) {
      throw std::invalid_argument("BitWriter::append: non-zero value with 0 bits");
    }
    return;
  }
  if (bits < 64 && (value >> bits) != 0) {
    throw std::invalid_argument("BitWriter::append: value does not fit in bits");
  }
  const std::size_t word = bit_size_ / 64;
  const int offset = static_cast<int>(bit_size_ % 64);
  if (words_.size() < word + 2) {
    words_.resize(word + 2, 0);
  }
  words_[word] |= value << offset;
  if (offset + bits > 64) {
    words_[word + 1] |= value >> (64 - offset);
  }
  bit_size_ += static_cast<std::size_t>(bits);
}

void BitWriter::align_to(int bit_boundary) {
  if (bit_boundary <= 0) {
    throw std::invalid_argument("BitWriter::align_to: boundary must be positive");
  }
  const std::size_t boundary = static_cast<std::size_t>(bit_boundary);
  const std::size_t rem = bit_size_ % boundary;
  if (rem == 0) {
    return;
  }
  std::size_t pad = boundary - rem;
  while (pad > 0) {
    const int chunk = pad > 64 ? 64 : static_cast<int>(pad);
    append(0, chunk);
    pad -= static_cast<std::size_t>(chunk);
  }
}

std::vector<std::uint64_t> BitWriter::take_words() {
  // Trim to exactly the words covering bit_size() so callers can rely
  // on size() == ceil(bit_size / 64).
  words_.resize((bit_size_ + 63) / 64);
  std::vector<std::uint64_t> out = std::move(words_);
  clear();
  return out;
}

BitReader::BitReader(std::span<const std::uint64_t> words, std::size_t bit_limit)
    : words_(words), bit_limit_(bit_limit) {
  const std::size_t capacity = words.size() * 64;
  if (bit_limit_ == SIZE_MAX || bit_limit_ > capacity) {
    bit_limit_ = capacity;
  }
}

std::uint64_t BitReader::read(std::size_t bit_pos, int bits) const {
  if (bits < 0 || bits > 64) {
    throw std::invalid_argument("BitReader::read: bits must be in [0, 64]");
  }
  if (bits == 0) {
    return 0;
  }
  if (bit_pos + static_cast<std::size_t>(bits) > bit_limit_) {
    throw std::out_of_range("BitReader::read: read past end of stream");
  }
  const std::size_t word = bit_pos / 64;
  const int offset = static_cast<int>(bit_pos % 64);
  std::uint64_t value = words_[word] >> offset;
  if (offset + bits > 64) {
    value |= words_[word + 1] << (64 - offset);
  }
  if (bits < 64) {
    value &= (std::uint64_t{1} << bits) - 1;
  }
  return value;
}

int bits_for_value(std::uint64_t max_value) noexcept {
  int bits = 1;
  while (bits < 64 && (max_value >> bits) != 0) {
    ++bits;
  }
  return bits;
}

}  // namespace topk::util
