#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topk::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) {
    throw std::invalid_argument("quantile: empty input");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q must be in [0, 1]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("mean: empty input");
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("geometric_mean: empty input");
  }
  double log_sum = 0.0;
  for (const double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geometric_mean: values must be positive");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace topk::util
