#include "util/percentile.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace topk::util {

PercentileWindow::PercentileWindow(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("PercentileWindow: capacity must be positive");
  }
}

void PercentileWindow::add(double value) {
  if (window_.size() < capacity_) {
    window_.push_back(value);
    return;
  }
  window_[next_] = value;
  next_ = (next_ + 1) % capacity_;
}

double PercentileWindow::quantile(double q) const {
  return util::quantile(window_, q);
}

void PercentileWindow::clear() {
  window_.clear();
  next_ = 0;
}

double histogram_quantile(std::span<const double> upper_bounds,
                          std::span<const std::uint64_t> counts, double q) {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("histogram_quantile: q outside [0, 1]");
  }
  if (counts.size() != upper_bounds.size() + 1) {
    throw std::invalid_argument(
        "histogram_quantile: counts must carry one overflow bucket beyond "
        "the finite bounds");
  }
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < upper_bounds.size(); ++b) {
    if (b > 0 && upper_bounds[b] <= upper_bounds[b - 1]) {
      throw std::invalid_argument(
          "histogram_quantile: bounds must be strictly increasing");
    }
    total += counts[b];
  }
  total += counts.back();
  if (total == 0) {
    return 0.0;
  }
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < upper_bounds.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (cumulative + in_bucket >= rank && in_bucket > 0.0) {
      const double lower = b == 0 ? 0.0 : upper_bounds[b - 1];
      const double fraction = (rank - cumulative) / in_bucket;
      return lower + (upper_bounds[b] - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  // The rank lives in the overflow bucket: the honest answer is "above
  // the largest finite bound", which clamps to that bound.
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

}  // namespace topk::util
