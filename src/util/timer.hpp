// Wall-clock timing helper for the measured (CPU) side of the benches.
#pragma once

#include <chrono>

namespace topk::util {

/// Monotonic stopwatch.  Construction starts it; seconds()/millis()
/// read the elapsed time without stopping.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace topk::util
