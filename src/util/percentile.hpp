// Percentile estimation shared by the serving layer and the telemetry
// histograms — one definition of "p99" for the whole stack.
//
// Two estimators with different trade-offs:
//
//   * PercentileWindow — exact quantiles (util::quantile linear
//     interpolation) over the most recent `capacity` samples.  O(n log
//     n) per digest, O(1) per sample; the right tool when the caller
//     already serialises access (serve::QueryEngine holds it under its
//     latency mutex) and wants percentiles that track recent traffic.
//   * histogram_quantile — the Prometheus estimator over fixed-bucket
//     cumulative counts: linear interpolation inside the bucket that
//     crosses the requested rank.  Lossy (bucket resolution) but
//     mergeable across processes and lock-free to feed, which is what
//     telemetry::Histogram needs.
//
// Both live here so a change to the interpolation rule moves every
// consumer at once instead of letting the engine and the registry
// drift apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace topk::util {

/// Fixed-capacity ring buffer of samples with exact quantile digests
/// over the retained window.  NOT thread-safe: callers serialise
/// access (the engine guards it with its latency mutex).
class PercentileWindow {
 public:
  /// Throws std::invalid_argument for capacity == 0.
  explicit PercentileWindow(std::size_t capacity);

  /// Records one sample, evicting the oldest once full.
  void add(double value);

  /// Samples currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return window_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return window_.empty(); }

  /// Copy of the retained samples (unordered — the ring rotation is
  /// not undone, quantiles sort anyway).
  [[nodiscard]] std::vector<double> samples() const { return window_; }

  /// Exact q-quantile of the retained window via util::quantile.
  /// Throws std::invalid_argument when empty or q outside [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Drops every sample (fresh measurement epoch).
  void clear();

 private:
  std::size_t capacity_;
  std::vector<double> window_;
  std::size_t next_ = 0;  ///< eviction cursor once the window is full
};

/// Prometheus-style quantile estimate over cumulative fixed buckets:
/// `upper_bounds` are the finite bucket upper edges (strictly
/// increasing), `counts` the per-bucket observation counts with ONE
/// extra trailing overflow bucket (counts.size() == upper_bounds.size()
/// + 1).  Interpolates linearly inside the bucket containing the
/// q-rank (the first bucket's lower edge is 0); ranks landing in the
/// overflow bucket clamp to the largest finite bound.  Returns 0 when
/// no observations were recorded.  Throws std::invalid_argument on a
/// size mismatch, an unsorted bound list, or q outside [0, 1].
[[nodiscard]] double histogram_quantile(std::span<const double> upper_bounds,
                                        std::span<const std::uint64_t> counts,
                                        double q);

}  // namespace topk::util
