// Process-wide metrics registry: the one vocabulary every layer of the
// serving stack counts in (tools/lint.py -Wraw-stat enforces it for
// stat-shaped atomics outside this directory).
//
// Three instrument types, all lock-free on the hot path:
//
//   * Counter   — monotonic uint64, one relaxed fetch_add per event;
//   * Gauge     — last-writer-wins double (set) with a CAS add path
//                 for +/- deltas (queue depth, in-flight);
//   * Histogram — fixed log-scale buckets chosen at registration, one
//                 relaxed increment + one CAS sum-add per observation,
//                 quantile estimates via util::histogram_quantile.
//
// Memory ordering: every atomic operation in this header is relaxed,
// on purpose.  Metrics are advisory monotonic counts and last-value
// hints — no other memory is published through them, and a scrape that
// reads a value one event stale is indistinguishable from a scrape
// scheduled one microsecond earlier.  Snapshots promise per-cell
// atomicity, never cross-cell consistency (a histogram's sum may run
// one in-flight observation ahead of its buckets).
//
// Registration (name + sorted labels) deduplicates behind a
// util::Mutex — it runs once per call site thanks to the function-
// local-static handle idiom:
//
//   telemetry::Counter& queries() {
//     static telemetry::Counter& c = telemetry::registry().counter(
//         "topk_engine_queries_total", {}, "Queries served.");
//     return c;
//   }
//   ... queries().inc();            // hot path: one relaxed add
//
// Instrument references stay valid for the registry's lifetime (cells
// are heap-allocated and never removed).  Exposition lives in
// telemetry/exposition.hpp; per-query tracing in telemetry/trace.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace topk::telemetry {

/// (label name, label value) pairs; canonicalised (sorted by name) at
/// registration, so {a=1, b=2} and {b=2, a=1} are the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event counter.
class Counter {
 public:
  /// relaxed: an independent monotonic count — nothing is published
  /// through it (see the header comment).
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins scalar with an add path for +/- deltas.
class Gauge {
 public:
  /// relaxed store: a last-value hint; scrapes read whatever the most
  /// recent writer left.
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  /// relaxed CAS loop: per-update atomicity is all a running delta
  /// needs — a lost race simply re-adds against the winner's value.
  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `candidate` if it is above the current value
  /// (peak tracking).  relaxed CAS: same per-update argument as add().
  void track_max(double candidate) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (current < candidate &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of one histogram cell.
struct HistogramSnapshot {
  std::vector<double> bounds;         ///< finite upper edges, ascending
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;            ///< total observations
  double sum = 0.0;                   ///< sum of observed values

  /// util::histogram_quantile over this snapshot.
  [[nodiscard]] double quantile(double q) const;
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]
/// (Prometheus `le` semantics), plus one overflow bucket.
class Histogram {
 public:
  /// Throws std::invalid_argument on an empty or non-increasing bound
  /// list.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Records one observation: a binary search over the immutable
  /// bounds, one relaxed bucket increment, one relaxed CAS sum-add.
  void observe(double value) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Convenience: quantile estimate over a fresh snapshot.
  [[nodiscard]] double quantile(double q) const { return snapshot().quantile(q); }

  /// `count` log-scale bucket bounds starting at `start`, each
  /// `factor` times the previous (Prometheus exponential_buckets).
  /// Throws std::invalid_argument for start <= 0, factor <= 1 or
  /// count < 1.
  [[nodiscard]] static std::vector<double> exponential_buckets(double start,
                                                               double factor,
                                                               int count);

  /// The default latency bucket ladder: 10 us to ~84 s, x2.5 per
  /// bucket — wide enough for a cold fpga-sim build and fine enough
  /// around the millisecond serving range.
  [[nodiscard]] static std::vector<double> latency_buckets() {
    return exponential_buckets(1e-5, 2.5, 18);
  }

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 cells, sized once in the constructor (vector
  /// of atomics is fine as long as it never reallocates).
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<double> sum_{0.0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string to_string(MetricType type);

/// One labelled cell of a family, snapshot form.
struct SeriesSnapshot {
  Labels labels;                ///< canonical (sorted by label name)
  double value = 0.0;           ///< counter/gauge value
  HistogramSnapshot histogram;  ///< histogram families only
};

/// One metric family (name + type + help) with its labelled series.
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<SeriesSnapshot> series;
};

/// Name + label registration with snapshot export.  Thread-safe; the
/// returned instrument references live as long as the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter cell for (name, labels), creating it on first
  /// use.  `help` is adopted from the first registration of the
  /// family.  Throws std::invalid_argument on an invalid metric/label
  /// name, a duplicate label name, or a type clash with an existing
  /// family.
  Counter& counter(const std::string& name, Labels labels = {},
                   const std::string& help = "");

  /// Gauge flavour of counter(); same validation and dedup rules.
  Gauge& gauge(const std::string& name, Labels labels = {},
               const std::string& help = "");

  /// Histogram flavour: `upper_bounds` must match the family's bounds
  /// on every registration (a drifting bucket layout would corrupt the
  /// aggregated exposition).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds, Labels labels = {},
                       const std::string& help = "");

  /// Point-in-time copy of every family, sorted by name with series
  /// sorted by canonical labels — deterministic exposition order.
  [[nodiscard]] std::vector<FamilySnapshot> snapshot() const;

 private:
  struct Series {
    Labels labels;  ///< canonical
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<double> bounds;  ///< histogram families only
    std::vector<Series> series;
  };

  /// Finds/creates the family and the series cell under mutex_; the
  /// instrument pointers are stable because cells are unique_ptr-held.
  Series& find_or_create(const std::string& name, Labels labels,
                         const std::string& help, MetricType type,
                         const std::vector<double>* bounds)
      TOPK_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  /// unique_ptr keeps Family addresses stable across vector growth.
  std::vector<std::unique_ptr<Family>> families_ TOPK_GUARDED_BY(mutex_);
};

/// The process-wide registry every built-in instrument registers with.
[[nodiscard]] MetricsRegistry& registry();

/// True for a legal Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*).
[[nodiscard]] bool valid_metric_name(const std::string& name);
/// True for a legal label name ([a-zA-Z_][a-zA-Z0-9_]*).
[[nodiscard]] bool valid_label_name(const std::string& name);

}  // namespace topk::telemetry
