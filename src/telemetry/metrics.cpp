#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "util/percentile.hpp"

namespace topk::telemetry {

namespace {

/// Canonical series identity: labels sorted by name.  Throws on a
/// duplicate label name — {shard="0", shard="1"} is a bug at the call
/// site, not two series.
Labels canonicalize(Labels labels) {
  std::sort(labels.begin(), labels.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < labels.size(); ++i) {
    if (labels[i].first == labels[i - 1].first) {
      throw std::invalid_argument("telemetry: duplicate label name '" +
                                  labels[i].first + "'");
    }
  }
  return labels;
}

}  // namespace

bool valid_metric_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == ':';
  };
  const auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
  };
  if (!head(name.front())) {
    return false;
  }
  return std::all_of(name.begin() + 1, name.end(), tail);
}

bool valid_label_name(const std::string& name) {
  // Same grammar as metric names minus the colon (reserved for
  // recording rules in Prometheus).
  return valid_metric_name(name) && name.find(':') == std::string::npos;
}

std::string to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

double HistogramSnapshot::quantile(double q) const {
  return util::histogram_quantile(bounds, counts, q);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double value) noexcept {
  // First bound >= value is the Prometheus-`le` bucket; everything
  // above the last finite bound lands in the trailing overflow cell.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  // relaxed bucket add + relaxed CAS sum: advisory counts, nothing is
  // published through them (see metrics.hpp header comment).
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& cell : counts_) {
    // relaxed: per-cell atomicity is the snapshot contract; cross-cell
    // skew of in-flight observations is documented and acceptable.
    const std::uint64_t n = cell.load(std::memory_order_relaxed);
    snap.counts.push_back(n);
    snap.count += n;
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<double> Histogram::exponential_buckets(double start, double factor,
                                                   int count) {
  if (start <= 0.0 || factor <= 1.0 || count < 1) {
    throw std::invalid_argument(
        "exponential_buckets: need start > 0, factor > 1, count >= 1");
  }
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    const std::string& name, Labels labels, const std::string& help,
    MetricType type, const std::vector<double>* bounds) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("telemetry: invalid metric name '" + name +
                                "'");
  }
  for (const auto& [label, _] : labels) {
    if (!valid_label_name(label)) {
      throw std::invalid_argument("telemetry: invalid label name '" + label +
                                  "' on metric '" + name + "'");
    }
  }
  Labels canonical = canonicalize(std::move(labels));

  Family* family = nullptr;
  for (const auto& candidate : families_) {
    if (candidate->name == name) {
      family = candidate.get();
      break;
    }
  }
  if (family == nullptr) {
    auto fresh = std::make_unique<Family>();
    fresh->name = name;
    fresh->help = help;
    fresh->type = type;
    if (bounds != nullptr) {
      fresh->bounds = *bounds;
    }
    families_.push_back(std::move(fresh));
    family = families_.back().get();
  } else {
    if (family->type != type) {
      throw std::invalid_argument("telemetry: metric '" + name +
                                  "' re-registered as " + to_string(type) +
                                  ", previously " + to_string(family->type));
    }
    if (bounds != nullptr && family->bounds != *bounds) {
      throw std::invalid_argument(
          "telemetry: histogram '" + name +
          "' re-registered with different bucket bounds");
    }
    if (family->help.empty() && !help.empty()) {
      family->help = help;
    }
  }

  for (auto& series : family->series) {
    if (series.labels == canonical) {
      return series;
    }
  }
  Series series;
  series.labels = std::move(canonical);
  switch (type) {
    case MetricType::kCounter:
      series.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      series.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      series.histogram = std::make_unique<Histogram>(family->bounds);
      break;
  }
  family->series.push_back(std::move(series));
  return family->series.back();
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels,
                                  const std::string& help) {
  util::MutexLock lock(mutex_);
  return *find_or_create(name, std::move(labels), help, MetricType::kCounter,
                         nullptr)
              .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels,
                              const std::string& help) {
  util::MutexLock lock(mutex_);
  return *find_or_create(name, std::move(labels), help, MetricType::kGauge,
                         nullptr)
              .gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      Labels labels, const std::string& help) {
  util::MutexLock lock(mutex_);
  return *find_or_create(name, std::move(labels), help, MetricType::kHistogram,
                         &upper_bounds)
              .histogram;
}

std::vector<FamilySnapshot> MetricsRegistry::snapshot() const {
  std::vector<FamilySnapshot> families;
  {
    util::MutexLock lock(mutex_);
    families.reserve(families_.size());
    for (const auto& family : families_) {
      FamilySnapshot snap;
      snap.name = family->name;
      snap.help = family->help;
      snap.type = family->type;
      snap.series.reserve(family->series.size());
      for (const auto& series : family->series) {
        SeriesSnapshot cell;
        cell.labels = series.labels;
        switch (family->type) {
          case MetricType::kCounter:
            cell.value = static_cast<double>(series.counter->value());
            break;
          case MetricType::kGauge:
            cell.value = series.gauge->value();
            break;
          case MetricType::kHistogram:
            cell.histogram = series.histogram->snapshot();
            break;
        }
        snap.series.push_back(std::move(cell));
      }
      families.push_back(std::move(snap));
    }
  }
  std::sort(families.begin(), families.end(),
            [](const FamilySnapshot& a, const FamilySnapshot& b) {
              return a.name < b.name;
            });
  for (auto& family : families) {
    std::sort(family.series.begin(), family.series.end(),
              [](const SeriesSnapshot& a, const SeriesSnapshot& b) {
                return a.labels < b.labels;
              });
  }
  return families;
}

MetricsRegistry& registry() {
  // Function-local static: constructed on first use, never destroyed
  // order-sensitively before the instruments that reference it (leaked
  // at exit is fine for a process-lifetime registry).
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace topk::telemetry
