#include "telemetry/exposition.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace topk::telemetry {

namespace {

std::string format_value(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  // Counters are integral doubles in snapshots — print them without a
  // fractional part so scrapes diff cleanly.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::ostringstream out;
    out.precision(15);
    out << value;
    return out.str();
  }
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

/// Bucket-bound labels use the shortest precision that still
/// round-trips typical exponential ladders ("2.5e-05", not
/// "2.5000000000000001e-05") — le values are identity labels, and
/// every series of a family renders them through this one path.
std::string format_le(double bound) {
  std::ostringstream out;
  out.precision(12);
  out << bound;
  return out.str();
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string label_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Prometheus HELP escaping: backslash and newline only.
std::string help_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders `{a="1",b="2"}` (empty string for no labels); `extra` is an
/// already-rendered label pair appended last (the histogram `le`).
std::string label_block(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += name + "=\"" + label_escape(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) {
      out += ",";
    }
    out += extra;
  }
  out += "}";
  return out;
}

void write_labels_json(std::ostream& out, const Labels& labels) {
  out << "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << json_escape(name) << "\":\"" << json_escape(value) << "\"";
  }
  out << "}";
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_prometheus(std::ostream& out,
                      const std::vector<FamilySnapshot>& families) {
  for (const FamilySnapshot& family : families) {
    if (!family.help.empty()) {
      out << "# HELP " << family.name << " " << help_escape(family.help)
          << "\n";
    }
    out << "# TYPE " << family.name << " " << to_string(family.type) << "\n";
    for (const SeriesSnapshot& series : family.series) {
      if (family.type != MetricType::kHistogram) {
        out << family.name << label_block(series.labels) << " "
            << format_value(series.value) << "\n";
        continue;
      }
      // Cumulative le buckets, closing with the mandatory +Inf bucket
      // equal to the total count.
      std::uint64_t cumulative = 0;
      const HistogramSnapshot& hist = series.histogram;
      for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
        cumulative += hist.counts[b];
        out << family.name << "_bucket"
            << label_block(series.labels,
                           "le=\"" + format_le(hist.bounds[b]) + "\"")
            << " " << cumulative << "\n";
      }
      out << family.name << "_bucket"
          << label_block(series.labels, "le=\"+Inf\"") << " " << hist.count
          << "\n";
      out << family.name << "_sum" << label_block(series.labels) << " "
          << format_value(hist.sum) << "\n";
      out << family.name << "_count" << label_block(series.labels) << " "
          << hist.count << "\n";
    }
  }
}

std::string to_prometheus(const std::vector<FamilySnapshot>& families) {
  std::ostringstream out;
  write_prometheus(out, families);
  return out.str();
}

void write_json(std::ostream& out,
                const std::vector<FamilySnapshot>& families) {
  out << "{\"metrics\":[";
  bool first_family = true;
  for (const FamilySnapshot& family : families) {
    if (!first_family) {
      out << ",";
    }
    first_family = false;
    out << "{\"name\":\"" << json_escape(family.name) << "\",\"type\":\""
        << to_string(family.type) << "\",\"help\":\""
        << json_escape(family.help) << "\",\"series\":[";
    bool first_series = true;
    for (const SeriesSnapshot& series : family.series) {
      if (!first_series) {
        out << ",";
      }
      first_series = false;
      out << "{\"labels\":";
      write_labels_json(out, series.labels);
      if (family.type != MetricType::kHistogram) {
        out << ",\"value\":" << format_value(series.value) << "}";
        continue;
      }
      const HistogramSnapshot& hist = series.histogram;
      out << ",\"count\":" << hist.count << ",\"sum\":"
          << format_value(hist.sum) << ",\"buckets\":[";
      for (std::size_t b = 0; b < hist.counts.size(); ++b) {
        if (b > 0) {
          out << ",";
        }
        const std::string le =
            b < hist.bounds.size() ? format_le(hist.bounds[b]) : "+Inf";
        out << "{\"le\":\"" << le << "\",\"count\":" << hist.counts[b] << "}";
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "]}\n";
}

std::string to_json(const std::vector<FamilySnapshot>& families) {
  std::ostringstream out;
  write_json(out, families);
  return out.str();
}

}  // namespace topk::telemetry
