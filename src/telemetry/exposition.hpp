// Machine-readable exposition over MetricsRegistry snapshots:
// Prometheus text format (scrapeable, validated by
// tools/check_metrics.py) and a JSON mirror of the same snapshot for
// ad-hoc tooling.  Pure functions over FamilySnapshot vectors — no
// locking here, callers pass a snapshot() result.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace topk::telemetry {

/// Escapes `\`, `"`, and control characters for a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& text);

/// Prometheus text format, version 0.0.4: per family a `# HELP` (when
/// non-empty) and `# TYPE` line, then one sample line per series.
/// Histograms expand into cumulative `_bucket{le="..."}` lines ending
/// with `le="+Inf"`, plus `_sum` and `_count`.
void write_prometheus(std::ostream& out,
                      const std::vector<FamilySnapshot>& families);
[[nodiscard]] std::string to_prometheus(
    const std::vector<FamilySnapshot>& families);

/// JSON mirror: {"metrics":[{"name","type","help","series":[{"labels":
/// {...},"value":...}|{"labels":{...},"count","sum","buckets":[{"le",
/// "count"}...]}]}]}.  Bucket counts here are per-bucket (NOT
/// cumulative) — the raw snapshot, not the scrape encoding.
void write_json(std::ostream& out,
                const std::vector<FamilySnapshot>& families);
[[nodiscard]] std::string to_json(const std::vector<FamilySnapshot>& families);

}  // namespace topk::telemetry
