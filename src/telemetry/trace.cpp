#include "telemetry/trace.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "telemetry/exposition.hpp"

namespace topk::telemetry {

namespace {

/// Formats a double the way the JSON writers do: shortest round-trip
/// representation, "0" for exact zero.
std::string format_number(double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; a quoted marker keeps the file loadable.
    return "\"nan\"";
  }
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

}  // namespace

double now_seconds() {
  // One fixed anchor for the whole process: every span and error
  // timestamp is comparable because they all subtract the same origin.
  static const auto origin = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin)
      .count();
}

SpanArg arg(std::string key, double value) {
  return {std::move(key), format_number(value), true};
}

SpanArg arg(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value), true};
}

SpanArg arg(std::string key, std::int64_t value) {
  return {std::move(key), std::to_string(value), true};
}

void TraceRecorder::enable(std::size_t capacity) {
  util::MutexLock lock(mutex_);
  spans_.clear();
  dropped_ = 0;
  capacity_ = capacity == 0 ? 1 : capacity;
  spans_.reserve(capacity_);
  // relaxed: the flag is advisory (see enabled()); the buffer swap
  // above is already ordered by the mutex for every recorder.
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::record(TraceSpan span) {
  if (!enabled()) {
    return;
  }
  util::MutexLock lock(mutex_);
  if (spans_.size() >= capacity_) {
    ++dropped_;  // bounded buffer: drop-and-count beats unbounded growth
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> TraceRecorder::snapshot() const {
  util::MutexLock lock(mutex_);
  return spans_;
}

std::uint64_t TraceRecorder::dropped() const {
  util::MutexLock lock(mutex_);
  return dropped_;
}

void TraceRecorder::clear() {
  util::MutexLock lock(mutex_);
  spans_.clear();
  dropped_ = 0;
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceSpan> spans = snapshot();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) {
      out << ",";
    }
    first = false;
    // Complete events ("ph":"X"): ts/dur are microseconds relative to
    // the process origin; pid is constant (single process), tid is the
    // dense thread ordinal so chrome://tracing draws one lane per
    // worker.
    out << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.category) << "\",\"ph\":\"X\",\"ts\":"
        << format_number(span.start_seconds * 1e6)
        << ",\"dur\":" << format_number(span.duration_seconds * 1e6)
        << ",\"pid\":1,\"tid\":" << span.thread_id << ",\"args\":{";
    out << "\"trace\":" << span.trace_id;
    for (const SpanArg& span_arg : span.args) {
      out << ",\"" << json_escape(span_arg.key) << "\":";
      if (span_arg.numeric) {
        out << span_arg.value;
      } else {
        out << "\"" << json_escape(span_arg.value) << "\"";
      }
    }
    out << "}}";
  }
  out << "]}\n";
}

TraceRecorder& tracer() {
  // Leaked singleton, same rationale as telemetry::registry(): spans
  // may be recorded from detached workers during process teardown.
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

namespace {

thread_local std::uint64_t t_trace_id = 0;

std::uint32_t next_thread_ordinal() {
  // relaxed: ordinals need uniqueness, not ordering.
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t current_trace_id() noexcept { return t_trace_id; }

std::uint32_t current_thread_ordinal() noexcept {
  thread_local const std::uint32_t ordinal = next_thread_ordinal();
  return ordinal;
}

TraceContextScope::TraceContextScope(std::uint64_t trace_id) noexcept
    : previous_(t_trace_id) {
  t_trace_id = trace_id;
}

TraceContextScope::~TraceContextScope() { t_trace_id = previous_; }

SpanTimer::SpanTimer(std::string name, std::string category) {
  // One relaxed load decides everything: while tracing is off this
  // constructor never touches the clock (the <2% p50 budget).
  if (!tracer().enabled()) {
    return;
  }
  active_ = true;
  span_.name = std::move(name);
  span_.category = std::move(category);
  span_.trace_id = current_trace_id();
  span_.thread_id = current_thread_ordinal();
  span_.start_seconds = now_seconds();
}

SpanTimer::~SpanTimer() {
  if (!active_) {
    return;
  }
  span_.duration_seconds = now_seconds() - span_.start_seconds;
  tracer().record(std::move(span_));
}

void SpanTimer::add_arg(SpanArg span_arg) {
  if (active_) {
    span_.args.push_back(std::move(span_arg));
  }
}

}  // namespace topk::telemetry
