// Per-query trace spans, exportable as Chrome trace-event JSON
// (chrome://tracing / Perfetto "Open trace file").
//
// Model: a trace id is minted where a request enters the system
// (serve::QueryEngine::submit, persist::Compactor::compact) and rides
// thread-local storage through the fan-out — scatter lambdas capture
// current_trace_id() before posting and re-establish it inside the
// pool thread with a TraceContextScope, so every span a worker records
// lands on the right query.
//
// Recording is OFF by default and costs one relaxed atomic load per
// would-be span; SpanTimer skips the clock entirely while disabled, so
// the acceptance gate "<2% p50 regression with telemetry enabled" is
// measured against an honest zero-cost baseline.  When enabled, spans
// are buffered in a fixed-capacity ring guarded by util::Mutex —
// recording drops (and counts) spans past capacity instead of growing
// unbounded under load.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace topk::telemetry {

/// Steady-clock seconds since process start — the time base for every
/// span and for ReplicaStats::last_error_seconds.  Monotonic and
/// comparable across threads; never wall-clock.
[[nodiscard]] double now_seconds();

/// One key/value annotation on a span.  `numeric` values are emitted
/// as bare JSON numbers/booleans, others as JSON strings.
struct SpanArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

[[nodiscard]] inline SpanArg arg(std::string key, std::string value) {
  return {std::move(key), std::move(value), false};
}
[[nodiscard]] SpanArg arg(std::string key, double value);
[[nodiscard]] SpanArg arg(std::string key, std::uint64_t value);
[[nodiscard]] SpanArg arg(std::string key, std::int64_t value);
[[nodiscard]] inline SpanArg arg(std::string key, int value) {
  return arg(std::move(key), static_cast<std::int64_t>(value));
}
[[nodiscard]] inline SpanArg arg(std::string key, bool value) {
  return {std::move(key), value ? "true" : "false", true};
}

/// One completed span ("ph":"X" in the Chrome trace-event format).
struct TraceSpan {
  std::string name;          ///< e.g. "query", "cell", "fold"
  std::string category;      ///< e.g. "engine", "shard", "compact"
  std::uint64_t trace_id = 0;
  std::uint32_t thread_id = 0;     ///< small per-process thread ordinal
  double start_seconds = 0.0;      ///< now_seconds() at span open
  double duration_seconds = 0.0;
  std::vector<SpanArg> args;
};

/// Fixed-capacity span buffer.  Disabled (and free) until enable().
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Starts recording into a fresh buffer of at most `capacity` spans.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  /// relaxed: a stale read costs one extra/missing span, never a race
  /// (the span buffer itself is mutex-guarded).
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Fresh process-unique trace id (first id is 1; 0 means "no trace").
  [[nodiscard]] std::uint64_t mint_trace_id() noexcept {
    // relaxed: uniqueness needs atomicity only, not ordering.
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Buffers one span; drops it (counted) when full or disabled.
  void record(TraceSpan span);

  [[nodiscard]] std::vector<TraceSpan> snapshot() const;
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

  /// Writes the buffered spans as a Chrome trace-event JSON object
  /// ({"traceEvents":[...]}; ts/dur in microseconds, one tid per
  /// recording thread, trace id surfaced in args).
  void write_chrome_trace(std::ostream& out) const;

  static constexpr std::size_t kDefaultCapacity = 65536;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_trace_id_{0};
  mutable util::Mutex mutex_;
  std::vector<TraceSpan> spans_ TOPK_GUARDED_BY(mutex_);
  std::size_t capacity_ TOPK_GUARDED_BY(mutex_) = kDefaultCapacity;
  std::uint64_t dropped_ TOPK_GUARDED_BY(mutex_) = 0;
};

/// The process-wide recorder every built-in span feeds.
[[nodiscard]] TraceRecorder& tracer();

/// The trace id attached to the calling thread (0 = none).
[[nodiscard]] std::uint64_t current_trace_id() noexcept;

/// Small per-process ordinal for the calling thread (stable, dense —
/// nicer chrome://tracing lanes than raw pthread ids).
[[nodiscard]] std::uint32_t current_thread_ordinal() noexcept;

/// RAII: installs `trace_id` as the calling thread's current trace id
/// and restores the previous one on destruction.  Scatter lambdas open
/// one of these first thing inside the pool thread.
class TraceContextScope {
 public:
  explicit TraceContextScope(std::uint64_t trace_id) noexcept;
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  std::uint64_t previous_;
};

/// RAII span: opens at construction, records at destruction — but only
/// when the recorder was enabled at construction time (one relaxed
/// load; the clock is never read while tracing is off).
class SpanTimer {
 public:
  SpanTimer(std::string name, std::string category);
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Attaches an annotation (no-op while disabled).
  void add_arg(SpanArg span_arg);
  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  TraceSpan span_;
  bool active_ = false;
};

}  // namespace topk::telemetry
